"""Run-report tests: builder semantics plus live-vs-replay byte identity."""

import json

import pytest

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.obs.config import ObsConfig
from repro.obs.report import ReportBuilder, build_report
from repro.obs.sinks import read_jsonl
from repro.sim.trace import TraceRecord


def rec(time, kind, **fields):
    return TraceRecord(time=time, kind=kind, fields=fields)


def attack_records(run=None):
    """A minimal protocol-clean attack→detection→quorum→isolation stream."""
    tag = {} if run is None else {"__run__": run}
    records = [
        rec(10.0, "wormhole_activity", node=7, **tag),
        rec(12.0, "malicious_drop", node=7, packet=1, **tag),
        rec(15.0, "malc_increment", guard=1, accused=7, value=1,
            reason="drop", packet=1, total=1, **tag),
        rec(20.0, "guard_detection", guard=1, accused=7, **tag),
    ]
    # θ=3 distinct guards must alert node 3 before it may isolate 7.
    for i, guard in enumerate((1, 2, 4)):
        records.append(
            rec(21.0 + 0.5 * i, "alert_sent",
                guard=guard, accused=7, recipient=3, **tag))
        records.append(
            rec(22.0 + 0.5 * i, "alert_accepted",
                node=3, guard=guard, accused=7, count=i + 1, **tag))
    records.append(rec(24.0, "isolation", node=3, accused=7, alerts=3, **tag))
    return records


def test_builder_counts_and_summary():
    report = build_report(attack_records())
    payload = report.payload
    assert payload["meta"]["records"] == 11
    assert payload["meta"]["runs"] == 1
    assert payload["meta"]["time_min"] == 10.0
    assert payload["meta"]["time_max"] == 24.0
    assert payload["summary"]["wormhole_drops"] == 1
    assert payload["summary"]["detections"] == 1
    assert payload["summary"]["isolations"] == 1
    assert payload["summary"]["alerts_sent"] == 3
    assert payload["summary"]["alerts_accepted"] == 3
    assert payload["summary"]["delivered"] == 0


def test_builder_latency_section():
    payload = build_report(attack_records()).payload
    (per_run,) = payload["latency"]["per_run"]
    entry = per_run["7"]
    assert entry["stages"]["attack_start"] == 10.0
    assert entry["stages"]["quorum"] == 24.0
    assert entry["total"] == 14.0
    assert payload["latency"]["summary"]["total"]["summary"]["count"] == 1


def test_builder_node_counters():
    payload = build_report(attack_records()).payload
    assert payload["node_counters"]["7"]["malicious_drops"] == 1
    assert payload["node_counters"]["7"]["malc_accrued"] == 1
    assert payload["node_counters"]["1"]["detections"] == 1
    assert payload["node_counters"]["3"]["isolations"] == 1


def test_builder_invariants_verdict():
    payload = build_report(attack_records()).payload
    inv = payload["invariants"]
    assert inv["schema_errors"] == 0
    assert inv["protocol_violations"] == 0
    assert inv["attack_observations"] > 0  # the wormhole is evidence
    assert inv["verdict"] == "pass"


def test_schema_errors_fail_the_verdict():
    records = attack_records() + [rec(30.0, "not_a_kind", whatever=1)]
    payload = build_report(records).payload
    assert payload["invariants"]["schema_errors"] == 1
    assert payload["invariants"]["verdict"] == "fail"


def test_multi_run_exports_group_per_run():
    records = attack_records(run="a:123") + attack_records(run="b:456")
    payload = build_report(records).payload
    assert payload["meta"]["runs"] == 2
    assert len(payload["latency"]["per_run"]) == 2
    # __run__ never leaks into per-node analysis.
    assert payload["latency"]["summary"]["total"]["summary"]["count"] == 2


def test_series_section_resamples_on_common_grid():
    payload = build_report(attack_records(), step=6.0).payload
    series = payload["series"]
    assert series["step"] == 6.0
    assert series["times"][-1] >= payload["meta"]["time_max"]
    (run,) = series["runs"]
    drops = run["wormhole_drops"]
    assert drops[-1] == 1.0
    assert series["bands"]["wormhole_drops"]["mean"] == drops


def test_builder_validates_parameters():
    with pytest.raises(ValueError):
        ReportBuilder(theta=0)
    with pytest.raises(ValueError):
        ReportBuilder(step=-1.0)


def test_empty_builder_still_renders():
    report = ReportBuilder().report()
    assert report.payload["meta"]["records"] == 0
    assert "Run report" in report.to_markdown()
    json.loads(report.to_json())


def test_markdown_sections_present():
    markdown = build_report(attack_records()).to_markdown()
    for heading in ("## Summary", "## Detection-latency decomposition",
                    "## Time series", "## Node counters", "## Invariants"):
        assert heading in markdown
    assert "attack start" in markdown


def test_complete_decomposition_counter():
    report = build_report(attack_records())
    assert report.complete_decompositions == 1
    partial = build_report(attack_records()[:3])  # never detected
    assert partial.complete_decompositions == 0


# ----------------------------------------------------------------------
# The acceptance-criterion test: a 50-node wormhole run, reported live
# and from its JSONL export, byte-identical — with a complete
# attack→detection→quorum→isolation decomposition.
# ----------------------------------------------------------------------
def test_live_and_replay_reports_are_byte_identical(tmp_path):
    out = tmp_path / "trace.jsonl"
    config = ScenarioConfig(
        n_nodes=50, duration=120.0, seed=3, attack_mode="outofband",
        n_malicious=2, attack_start=40.0, defense="liteworp",
        obs=ObsConfig(trace_path=str(out)),
    )
    scenario = build_scenario(config)
    live = ReportBuilder(theta=3)
    live.attach(scenario.trace)
    scenario.run()

    replay = build_report(read_jsonl(out), theta=3)
    assert live.report().to_json() == replay.to_json()

    payload = replay.payload
    assert replay.complete_decompositions >= 1
    assert payload["invariants"]["verdict"] == "pass"
    # The monitor's sampled gauge feeds the occupancy series.
    assert payload["meta"]["kinds"].get("watch_buffer", 0) > 0
    assert max(payload["series"]["bands"]["watch_buffer"]["max"]) > 0.0
