"""Property-based tests (hypothesis) for the fault subsystem.

Two liveness/recovery invariants, each over randomly drawn small
networks and fault schedules:

- **Sticky revocations** — a node that revoked a neighbor stays revoked
  across any number of crash-recover cycles (the revocation list models
  nonvolatile storage).
- **No false isolation** — with heartbeats on, crash-stopping any honest
  node never gets it isolated by its neighbors: the failure detector
  adjudicates the silence before drop accusations can accumulate.

Plus a round-trip property: any valid plan survives JSON serialization.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agent import LiteworpAgent
from repro.core.config import LiteworpConfig
from repro.crypto.keys import PairwiseKeyManager
from repro.faults.controller import FaultController
from repro.faults.plan import (
    ClockDrift,
    CrashRecover,
    CrashStop,
    FaultPlan,
    LinkFlap,
    LossBurst,
    MacSaturation,
)
from repro.net.topology import grid_topology
from tests.conftest import Harness

fault_strategy = st.one_of(
    st.builds(
        CrashStop,
        at=st.floats(min_value=0.0, max_value=100.0),
        node=st.integers(min_value=0, max_value=50),
    ),
    st.builds(
        CrashRecover,
        at=st.floats(min_value=0.0, max_value=100.0),
        node=st.integers(min_value=0, max_value=50),
        downtime=st.floats(min_value=0.1, max_value=60.0),
    ),
    st.builds(
        LinkFlap,
        at=st.floats(min_value=0.0, max_value=100.0),
        a=st.integers(min_value=0, max_value=20),
        b=st.integers(min_value=21, max_value=50),
        downtime=st.floats(min_value=0.1, max_value=60.0),
    ),
    st.builds(
        LossBurst,
        at=st.floats(min_value=0.0, max_value=100.0),
        probability=st.floats(min_value=0.01, max_value=0.99),
        duration=st.floats(min_value=0.1, max_value=60.0),
    ),
    st.builds(
        MacSaturation,
        at=st.floats(min_value=0.0, max_value=100.0),
        node=st.integers(min_value=0, max_value=50),
        duration=st.floats(min_value=0.1, max_value=10.0),
        rate=st.floats(min_value=1.0, max_value=100.0),
    ),
    st.builds(
        ClockDrift,
        at=st.floats(min_value=0.0, max_value=100.0),
        node=st.integers(min_value=0, max_value=50),
        skew=st.floats(min_value=-0.5, max_value=0.5),
    ),
)


@given(st.lists(fault_strategy, max_size=12))
@settings(max_examples=50, deadline=None)
def test_plan_json_round_trip(faults):
    plan = FaultPlan(faults=tuple(faults))
    assert FaultPlan.from_json(plan.to_json()) == plan
    assert plan.end_time() >= max((f.at for f in plan), default=0.0)


def _build_line(config: LiteworpConfig, columns: int):
    harness = Harness(
        grid_topology(columns=columns, rows=1, spacing=20.0, tx_range=30.0)
    )
    keys = PairwiseKeyManager()
    adjacency = harness.topology.adjacency()
    agents = {}
    for node_id in harness.topology.node_ids:
        agent = LiteworpAgent(
            harness.sim,
            harness.node(node_id),
            keys.enroll(node_id),
            config,
            harness.trace,
        )
        agent.install_oracle(adjacency)
        agents[node_id] = agent
    return harness, agents


@given(
    columns=st.integers(min_value=3, max_value=5),
    cycles=st.integers(min_value=1, max_value=3),
    downtime=st.floats(min_value=5.0, max_value=15.0),
)
@settings(max_examples=10, deadline=None)
def test_revocations_sticky_across_crash_recover(columns, cycles, downtime):
    """Whatever the reboot schedule, a revocation never un-happens."""
    config = LiteworpConfig(heartbeat_period=1.0, probe_backoff=0.2)
    harness, agents = _build_line(config, columns)
    revoker, revoked = 0, 1
    agents[revoker].table.revoke(revoked)
    faults = [
        CrashRecover(at=2.0 + i * (downtime + 10.0), node=revoker, downtime=downtime)
        for i in range(cycles)
    ]
    controller = FaultController(harness.network, harness.trace)
    controller.apply(FaultPlan.of(*faults))
    harness.run(2.0 + cycles * (downtime + 10.0) + 10.0)
    assert harness.node(revoker).alive
    assert agents[revoker].activated  # rejoined after every reboot
    assert agents[revoker].table.is_revoked(revoked)
    assert not agents[revoker].is_usable(revoked)


@given(
    victim=st.integers(min_value=0, max_value=8),
    crash_at=st.floats(min_value=2.0, max_value=10.0),
    pressure=st.integers(min_value=0, max_value=6),
)
@settings(max_examples=10, deadline=None)
def test_no_crashed_honest_node_isolated_with_heartbeats(victim, crash_at, pressure):
    """Crash-stop any node in an all-honest grid (optionally with some
    pre-crash MalC pressure short of C_t): with the liveness layer on,
    nobody ever isolates it."""
    config = LiteworpConfig(heartbeat_period=1.0, probe_backoff=0.2)
    harness, agents = _build_line(config, 3)
    victim = victim % 3
    guard = (victim + 1) % 3
    if pressure:
        agents[guard].table.record_malicious(victim, pressure, now=1.0, window=200.0)
    harness.sim.schedule_at(crash_at, harness.node(victim).fail)
    harness.run(crash_at + 60.0)
    for node_id, agent in agents.items():
        if node_id == victim:
            continue
        assert not agent.has_isolated(victim), f"node {node_id} isolated the victim"
    assert harness.trace.count("isolation") == 0
