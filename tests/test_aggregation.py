"""Tests for tree aggregation and its corruption by the wormhole."""

import pytest

from repro.aggregation.tree import (
    COUNT,
    MAX,
    SUM,
    AggregationConfig,
    TreeAggregation,
)
from repro.net.topology import grid_topology
from repro.routing.beacon import BeaconConfig, BeaconTreeRouting, WormholeBeaconRouting
from tests.conftest import Harness

SINK = 0


def build(columns=5, rows=1, kind=SUM, wormhole=(), spacing=25.0):
    harness = Harness(grid_topology(columns=columns, rows=rows, spacing=spacing,
                                    tx_range=30.0))
    beacon_config = BeaconConfig(beacon_interval=5.0)
    agg_config = AggregationConfig(kind=kind, epoch_interval=10.0, depth_slot=0.3,
                                   max_depth=12)
    trees = {}
    aggs = {}
    wormhole_agents = []
    for node_id in harness.topology.node_ids:
        node = harness.node(node_id)
        rng = harness.rng.stream(f"b:{node_id}")
        if node_id in wormhole:
            tree = WormholeBeaconRouting(
                harness.sim, node, beacon_config, harness.trace, rng, SINK,
                network=harness.network,
            )
            wormhole_agents.append(tree)
        else:
            tree = BeaconTreeRouting(harness.sim, node, beacon_config,
                                     harness.trace, rng, SINK)
        trees[node_id] = tree
        # Pre-activation, a compromised node aggregates honestly like
        # everyone else; the wormhole test stops its agent on activation
        # (it then swallows its children's partials).
        agg = TreeAggregation(
            harness.sim, tree, agg_config, harness.trace,
            reading_fn=lambda node, epoch: float(node),
        )
        agg.start()
        aggs[node_id] = agg
    if len(wormhole_agents) == 2:
        wormhole_agents[0].pair_with(wormhole_agents[1])
    trees[SINK].start()
    return harness, trees, aggs, wormhole_agents


def last_result(harness):
    results = harness.trace.of_kind("aggregate_result")
    return results[-1] if results else None


def test_sum_aggregates_whole_line():
    harness, trees, aggs, _ = build(columns=5, kind=SUM)
    harness.run(35.0)
    result = last_result(harness)
    assert result is not None
    # Nodes 1..4 contribute their ids: 1+2+3+4 = 10, count 4.
    assert result["value"] == pytest.approx(10.0)
    assert result["count"] == 4


def test_max_aggregation():
    harness, trees, aggs, _ = build(columns=5, kind=MAX)
    harness.run(35.0)
    result = last_result(harness)
    assert result is not None
    assert result["value"] == pytest.approx(4.0)


def test_count_aggregation():
    harness, trees, aggs, _ = build(columns=6, kind=COUNT)
    harness.run(35.0)
    result = last_result(harness)
    assert result is not None
    assert result["value"] == pytest.approx(5.0)  # everyone but the sink


def test_unattached_node_skips_epoch():
    harness, trees, aggs, _ = build(columns=3)
    # Stop beacons before any epoch: node depths stay None.
    trees[SINK].stop()
    harness.run(12.0)
    # No partials without a tree; the sink still finalises with count 0.
    result = last_result(harness)
    if result is not None:
        assert result["count"] == 0


def test_aggregation_epochs_repeat():
    harness, trees, aggs, _ = build(columns=3)
    harness.run(45.0)
    results = harness.trace.of_kind("aggregate_result")
    assert len(results) >= 3
    epochs = [r["epoch"] for r in results]
    assert epochs == sorted(epochs)


def test_wormhole_starves_the_aggregate():
    """Far end captures distant nodes as children; their partials flow to
    the wormhole and vanish, so the sink's count drops."""
    harness, trees, aggs, wa = build(columns=10, kind=COUNT, wormhole=(1, 7))
    harness.run(16.0)  # one clean epoch (finalised at ~13.9 s) first
    clean = last_result(harness)
    for agent in wa:
        agent.activate()
        aggs[agent.node.node_id].stop()  # swallow instead of reporting
    harness.run(45.0)
    corrupted = last_result(harness)
    assert clean is not None and corrupted is not None
    assert corrupted["count"] < clean["count"]


def test_config_validation():
    with pytest.raises(ValueError):
        AggregationConfig(kind="median")
    with pytest.raises(ValueError):
        AggregationConfig(epoch_interval=0)
    with pytest.raises(ValueError):
        AggregationConfig(depth_slot=0)
    with pytest.raises(ValueError):
        AggregationConfig(max_depth=0)
    with pytest.raises(ValueError):
        AggregationConfig(epoch_interval=1.0, depth_slot=0.3, max_depth=12)
