"""Tests for scenario assembly and the experiment parameter set."""

import pytest

from repro.experiments.parameters import TABLE2
from repro.experiments.scenario import (
    ScenarioConfig,
    average_runs,
    build_scenario,
    run_scenario,
)


def test_table2_values_match_paper():
    assert TABLE2.tx_range_m == 30.0
    assert TABLE2.node_counts == (20, 50, 100, 150)
    assert TABLE2.avg_neighbors == 8
    assert TABLE2.data_rate == pytest.approx(1 / 10)
    assert TABLE2.dest_change_rate == pytest.approx(1 / 200)
    assert TABLE2.route_timeout == 50.0
    assert TABLE2.channel_bandwidth_bps == 40_000.0
    assert TABLE2.theta_range == (2, 3, 4, 5, 6, 7, 8)
    assert TABLE2.malicious_counts == (0, 1, 2, 3, 4)


def test_table2_rows_render():
    rows = dict(TABLE2.rows())
    assert rows["Tx Range (r)"] == "30 m"
    assert rows["N_B"] == "8"
    assert rows["Channel BW"] == "40 kbps"


def test_build_scenario_is_deterministic():
    config = ScenarioConfig(n_nodes=20, duration=60.0, seed=4, attack_start=20.0)
    a = build_scenario(config)
    b = build_scenario(config)
    assert a.topology.positions == b.topology.positions
    assert a.malicious_ids == b.malicious_ids


def test_run_scenario_deterministic_end_to_end():
    config = ScenarioConfig(n_nodes=20, duration=60.0, seed=4, attack_start=20.0)
    r1 = run_scenario(config)
    r2 = run_scenario(config)
    assert r1.originated == r2.originated
    assert r1.delivered == r2.delivered
    assert r1.wormhole_drops == r2.wormhole_drops
    assert r1.drop_times == r2.drop_times


def test_different_seeds_differ():
    base = ScenarioConfig(n_nodes=20, duration=60.0, seed=4, attack_start=20.0)
    from dataclasses import replace
    a = build_scenario(base)
    b = build_scenario(replace(base, seed=5))
    assert a.topology.positions != b.topology.positions


def test_malicious_nodes_separated():
    config = ScenarioConfig(n_nodes=40, duration=60.0, seed=4, attack_start=20.0)
    scenario = build_scenario(config)
    a, b = scenario.malicious_ids
    hops = scenario.topology.hop_distance(a, b)
    assert hops is not None and hops > 2


def test_honest_nodes_have_agents_malicious_do_not():
    config = ScenarioConfig(n_nodes=20, duration=60.0, seed=4, attack_start=20.0)
    scenario = build_scenario(config)
    for malicious in scenario.malicious_ids:
        assert malicious not in scenario.agents
    for honest in scenario.honest_ids:
        assert honest in scenario.agents


def test_liteworp_disabled_builds_no_agents():
    config = ScenarioConfig(
        n_nodes=20, duration=60.0, seed=4, attack_start=20.0, defense="none"
    )
    scenario = build_scenario(config)
    assert scenario.agents == {}


def test_traffic_sources_exclude_malicious():
    config = ScenarioConfig(n_nodes=20, duration=60.0, seed=4, attack_start=20.0)
    scenario = build_scenario(config)
    assert set(scenario.traffic.sources) == set(scenario.honest_ids)


def test_attack_none_has_no_malicious():
    config = ScenarioConfig(n_nodes=20, duration=60.0, seed=4, attack_mode="none")
    scenario = build_scenario(config)
    assert scenario.malicious_ids == ()
    assert scenario.coordinator is None


def test_average_runs_distinct_seeds():
    config = ScenarioConfig(n_nodes=20, duration=60.0, seed=4, attack_start=20.0)
    reports = average_runs(config, runs=2)
    assert len(reports) == 2


def test_average_runs_validation():
    config = ScenarioConfig(n_nodes=20, duration=60.0, seed=4)
    with pytest.raises(ValueError):
        average_runs(config, runs=0)


def test_config_validation():
    with pytest.raises(ValueError):
        ScenarioConfig(attack_mode="bogus")
    with pytest.raises(ValueError):
        ScenarioConfig(n_malicious=-1)
    with pytest.raises(ValueError):
        ScenarioConfig(n_nodes=2)
    with pytest.raises(ValueError):
        ScenarioConfig(attack_mode="highpower", n_malicious=2)
    with pytest.raises(ValueError):
        ScenarioConfig(duration=40.0, attack_start=50.0)


@pytest.mark.parametrize(
    "kwargs, fragment",
    [
        ({"n_nodes": 3}, "at least 4 nodes"),
        ({"tx_range": 0.0}, "tx_range must be positive"),
        ({"tx_range": -5.0}, "tx_range must be positive"),
        ({"avg_neighbors": 0.0}, "avg_neighbors must be positive"),
        ({"duration": 0.0}, "duration must be positive"),
        ({"attack_start": -1.0}, "attack_start must be non-negative"),
        ({"malicious_min_separation": -1}, "must be non-negative"),
        ({"encap_hop_delay": -0.1}, "encap_hop_delay must be non-negative"),
        ({"highpower_multiplier": 0.0}, "highpower_multiplier must be positive"),
        ({"defense": "tinfoil"}, "defense must be one of"),
    ],
)
def test_config_validation_is_eager_with_clear_messages(kwargs, fragment):
    """A malformed config must fail at construction, naming the offending
    field and the value it got."""
    with pytest.raises(ValueError, match=fragment):
        ScenarioConfig(**kwargs)


def test_config_validation_reports_offending_value():
    with pytest.raises(ValueError, match=r"got -1\.0"):
        ScenarioConfig(tx_range=-1.0)


def test_oracle_mode_default_activates_immediately():
    config = ScenarioConfig(n_nodes=20, duration=60.0, seed=4, attack_start=20.0)
    scenario = build_scenario(config)
    assert all(agent.activated for agent in scenario.agents.values())


def test_protocol_discovery_mode():
    config = ScenarioConfig(
        n_nodes=16, duration=60.0, seed=4, attack_start=20.0, oracle_neighbors=False
    )
    scenario = build_scenario(config)
    assert not any(agent.activated for agent in scenario.agents.values())
    scenario.run()
    assert all(agent.activated for agent in scenario.agents.values())
