"""Tests for the message-driven secure neighbor-discovery protocol."""

from repro.core.agent import LiteworpAgent
from repro.core.config import LiteworpConfig
from repro.core.discovery import install_oracle_tables
from repro.core.tables import NeighborTable
from repro.crypto.keys import PairwiseKeyManager
from repro.net.topology import grid_topology
from tests.conftest import Harness


def run_discovery(harness, keys=None, config=None, outsiders=()):
    keys = keys or PairwiseKeyManager()
    config = config or LiteworpConfig()
    agents = {}
    for node_id in harness.topology.node_ids:
        store = keys.outsider(node_id) if node_id in outsiders else keys.enroll(node_id)
        agent = LiteworpAgent(
            harness.sim, harness.node(node_id), store, config, harness.trace,
            rng=harness.rng.stream(f"lw:{node_id}"),
        )
        agent.start_discovery()
        agents[node_id] = agent
    harness.run(config.activate_time + 1.0)
    return agents


def test_discovery_builds_first_hop_lists():
    harness = Harness(grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0))
    agents = run_discovery(harness)
    assert set(agents[1].table.neighbors()) == {0, 2}
    assert set(agents[0].table.neighbors()) == {1}


def test_discovery_builds_second_hop_lists():
    harness = Harness(grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0))
    agents = run_discovery(harness)
    assert agents[0].table.neighbors_of(1) == frozenset({0, 2})


def test_discovery_activates_agents():
    harness = Harness(grid_topology(columns=2, rows=1, spacing=25.0, tx_range=30.0))
    agents = run_discovery(harness)
    assert all(agent.activated for agent in agents.values())
    assert harness.trace.count("nd_complete") == 2


def test_discovery_matches_oracle_on_grid():
    harness = Harness(grid_topology(columns=3, rows=3, spacing=25.0, tx_range=30.0))
    agents = run_discovery(harness)
    adjacency = harness.topology.adjacency()
    for node_id, agent in agents.items():
        assert set(agent.table.neighbors()) == set(adjacency[node_id]), node_id


def test_outsider_cannot_join_neighborhood():
    """A node without keys gets no verified replies and is in nobody's list."""
    harness = Harness(grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0))
    agents = run_discovery(harness, outsiders=(2,))
    # Node 1 heard node 2's HELLO but node 2 cannot authenticate a reply,
    # and node 2 stays silent on node 1's HELLO (it has no key to reply with).
    assert 2 not in agents[1].table.neighbors()
    # Symmetric: the outsider collects no verified neighbors either.
    assert agents[2].table.neighbors() == ()


def test_oracle_installation_matches_protocol_result():
    topo = grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0)
    adjacency = topo.adjacency()
    table = NeighborTable(owner=1)
    install_oracle_tables(table, 1, adjacency)
    assert set(table.neighbors()) == {0, 2}
    assert table.neighbors_of(0) == frozenset({1})


def test_forged_neighbor_list_rejected():
    """A neighbor-list broadcast whose per-member tag fails verification
    is ignored (no second-hop entry installed)."""
    from repro.core.agent import LiteworpAgent
    from repro.core.config import LiteworpConfig
    from repro.net.packet import Frame, NeighborListPacket

    harness = Harness(grid_topology(columns=2, rows=1, spacing=25.0, tx_range=30.0))
    keys = PairwiseKeyManager()
    agent = LiteworpAgent(
        harness.sim, harness.node(0), keys.enroll(0), LiteworpConfig(), harness.trace
    )
    agent.start_discovery()
    forged = NeighborListPacket(sender=1, neighbors=(0, 7), auths=((0, b"garbage!"),))
    agent.discovery.on_frame(Frame(packet=forged, transmitter=1))
    assert not agent.table.knows_second_hop(1)
    assert harness.trace.count("nd_list_rejected", node=0, sender=1) == 1


def test_hello_reply_for_other_announcer_ignored():
    from repro.core.agent import LiteworpAgent
    from repro.core.config import LiteworpConfig
    from repro.crypto.auth import Authenticator
    from repro.net.packet import Frame, HelloReplyPacket

    harness = Harness(grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0))
    keys = PairwiseKeyManager()
    agent = LiteworpAgent(
        harness.sim, harness.node(0), keys.enroll(0), LiteworpConfig(), harness.trace
    )
    agent.start_discovery()
    # A perfectly valid reply, but addressed to announcer 2, overheard by 0.
    key = keys.pairwise_key(1, 2)
    reply = HelloReplyPacket(
        sender=1, announcer=2, auth=Authenticator.tag(key, "hello-reply", 1, 2)
    )
    agent.discovery.on_frame(Frame(packet=reply, transmitter=1, link_dst=2))
    harness.run(5.0)
    # Node 1 is a real neighbor and will be found via the normal exchange,
    # but the overheard reply alone must not have been the cause at t=0.
    # (The state check: the reply was not recorded as a verified responder
    # before any HELLO was even answered.)
    assert True  # reaching here without crashing covers the guard branch


def test_discovery_completes_without_neighbors():
    """A node alone in the field finishes discovery with empty tables."""
    from repro.core.agent import LiteworpAgent
    from repro.core.config import LiteworpConfig
    from repro.net.topology import Topology

    topo = Topology(positions={0: (0.0, 0.0)}, tx_range=30.0)
    harness = Harness(topo)
    keys = PairwiseKeyManager()
    agent = LiteworpAgent(
        harness.sim, harness.node(0), keys.enroll(0), LiteworpConfig(), harness.trace
    )
    agent.start_discovery()
    harness.run(5.0)
    assert agent.activated
    assert agent.table.neighbors() == ()
