"""Unit tests for the traffic generator."""

import pytest

from repro.net.topology import grid_topology
from repro.routing.config import RoutingConfig
from repro.routing.ondemand import OnDemandRouting
from repro.traffic.generator import TrafficConfig, TrafficGenerator
from tests.conftest import Harness


def build(n=4, config=None):
    harness = Harness(grid_topology(columns=n, rows=1, spacing=25.0, tx_range=30.0))
    routers = {
        node_id: OnDemandRouting(
            harness.sim, harness.node(node_id), RoutingConfig(), harness.trace,
            harness.rng.stream(f"routing:{node_id}"),
        )
        for node_id in harness.topology.node_ids
    }
    traffic = TrafficGenerator(
        harness.sim, routers, sources=list(routers), rng=harness.rng,
        config=config or TrafficConfig(data_rate=1.0, start_time=0.0),
    )
    return harness, routers, traffic


def test_sources_generate_data():
    harness, routers, traffic = build()
    traffic.start()
    harness.run(30.0)
    assert traffic.packets_originated > 0
    assert harness.trace.count("data_origin") == traffic.packets_originated


def test_rate_roughly_matches_lambda():
    harness, routers, traffic = build()
    traffic.start()
    harness.run(100.0)
    # 4 sources at 1 pkt/s for 100 s -> ~400; allow wide tolerance.
    assert 250 < traffic.packets_originated < 560


def test_no_traffic_before_start_time():
    harness, routers, traffic = build(
        config=TrafficConfig(data_rate=5.0, start_time=10.0)
    )
    traffic.start()
    harness.run(9.0)
    assert traffic.packets_originated == 0


def test_destination_never_self():
    harness, routers, traffic = build()
    traffic.start()
    harness.run(50.0)
    for record in harness.trace.of_kind("data_origin"):
        assert record["origin"] != record["destination"]


def test_destinations_only_from_sources():
    harness, routers, traffic = build()
    allowed = set(routers)
    traffic.start()
    harness.run(30.0)
    for record in harness.trace.of_kind("data_origin"):
        assert record["destination"] in allowed


def test_destination_changes_over_time():
    harness, routers, traffic = build(
        config=TrafficConfig(data_rate=2.0, destination_change_rate=0.5, start_time=0.0)
    )
    traffic.start()
    destinations = set()
    harness.run(60.0)
    for record in harness.trace.of_kind("data_origin"):
        if record["origin"] == 0:
            destinations.add(record["destination"])
    assert len(destinations) >= 2


def test_stop_halts_generation():
    harness, routers, traffic = build()
    traffic.start()
    harness.run(10.0)
    count = traffic.packets_originated
    traffic.stop()
    harness.run(50.0)
    assert traffic.packets_originated == count


def test_start_idempotent():
    harness, routers, traffic = build()
    traffic.start()
    traffic.start()
    harness.run(20.0)
    # Rate unchanged (no doubled timers): still in the single-source band.
    assert traffic.packets_originated < 120


def test_current_destination_exposed():
    harness, routers, traffic = build()
    traffic.start()
    assert traffic.current_destination(0) in {1, 2, 3}


def test_needs_two_sources():
    harness, routers, _ = build()
    with pytest.raises(ValueError):
        TrafficGenerator(harness.sim, routers, sources=[0], rng=harness.rng)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"data_rate": 0},
        {"destination_change_rate": 0},
        {"payload_size": 0},
        {"start_time": -1},
    ],
)
def test_invalid_config(kwargs):
    with pytest.raises(ValueError):
        TrafficConfig(**kwargs)
