"""Tests for campaign worker supervision and crash consistency: per-job
timeouts, poison-job quarantine, graceful stop, torn journal writes, and
the acceptance proof that a campaign run under injected harness churn
resumes to byte-identical aggregates versus a fault-free run."""

import json

import pytest

from repro.experiments.campaign import (
    CampaignError,
    CampaignJournal,
    CampaignRunner,
    CampaignSpec,
    RetryPolicy,
    SupervisionPolicy,
    load_journal,
    make_backend,
)
from repro.experiments.scenario import ScenarioConfig
from repro.faults.harness import (
    CorruptResult,
    HarnessFaultController,
    HarnessFaultPlan,
    SinkIOError,
    TornJournalWrite,
    WorkerCrash,
    WorkerHang,
)
from repro.metrics.collector import MetricsReport


def tiny_spec(name="supervised", runs=2):
    base = ScenarioConfig(n_nodes=16, duration=30.0, seed=4, attack_start=10.0)
    return CampaignSpec(
        name=name, base=base, axes=(("n_malicious", (0, 2)),), runs=runs
    )


class _FakeWorker:
    """Picklable instant worker: a deterministic report from the config.

    Supervision tests exercise scheduling, not simulation — a sub-ms
    worker keeps timeout windows (and therefore the suite) tight.
    """

    def __call__(self, config):
        return MetricsReport(
            duration=config.duration,
            originated=10 + config.seed % 7,
            delivered=8,
            wormhole_drops=config.n_malicious,
            routes_established=9,
            malicious_routes=config.n_malicious,
            drop_times=(1.0,),
            isolation_times={},
            first_activity={},
            detections=config.n_malicious,
            isolations=0,
        )


class _SlowWorker(_FakeWorker):
    """Sleeps ``seconds`` before answering (inline-timeout fodder)."""

    def __init__(self, seconds):
        self.seconds = seconds

    def __call__(self, config):
        import time

        time.sleep(self.seconds)
        return super().__call__(config)


def _aggregate_json(result):
    return json.dumps(result.aggregate, sort_keys=True)


# ----------------------------------------------------------------------
# Policy + inline timeout semantics
# ----------------------------------------------------------------------
def test_supervision_policy_validation():
    with pytest.raises(ValueError, match="timeout"):
        SupervisionPolicy(timeout=0.0)
    with pytest.raises(ValueError, match="timeout"):
        SupervisionPolicy(timeout=-1.0)
    assert SupervisionPolicy().quarantine is True
    assert SupervisionPolicy().timeout is None


def test_inline_timeout_dead_letters_slow_jobs(tmp_path):
    spec = tiny_spec(runs=1)
    journal = tmp_path / "slow.jsonl"
    result = CampaignRunner(
        spec,
        worker=_SlowWorker(0.05),
        journal_path=journal,
        retry=RetryPolicy(retries=0, backoff=0.0),
        supervision=SupervisionPolicy(timeout=0.01),
        sleep=lambda _s: None,
    ).run()
    assert not result.complete
    assert result.timeouts == result.total_jobs
    assert result.dead_lettered == result.total_jobs
    state = load_journal(journal)
    assert len(state.dead_letters) == result.total_jobs
    for payload in state.dead_letters.values():
        assert "JobTimeoutError" in payload["error"]
        assert "timeout" in payload["error"]

    # Dead-lettered jobs are not "complete": a resume (without the
    # timeout) gives every one of them a fresh chance.
    resumed = CampaignRunner(
        spec, worker=_FakeWorker(), journal_path=journal, resume=True
    ).run()
    assert resumed.complete
    assert resumed.executed == result.total_jobs


def test_quarantine_off_raises_like_before(tmp_path):
    spec = tiny_spec(runs=1)
    with pytest.raises(CampaignError, match="failed after"):
        CampaignRunner(
            spec,
            worker=_SlowWorker(0.05),
            retry=RetryPolicy(retries=0, backoff=0.0),
            supervision=SupervisionPolicy(timeout=0.01, quarantine=False),
            sleep=lambda _s: None,
        ).run()


# ----------------------------------------------------------------------
# Poison quarantine keeps the campaign going
# ----------------------------------------------------------------------
class _PoisonWorker(_FakeWorker):
    """Fails every attempt at one specific job digest; instant otherwise."""

    def __init__(self, poison_digest):
        self.poison_digest = poison_digest

    def __call__(self, config):
        from repro.experiments.cache import config_digest

        if config_digest(config) == self.poison_digest:
            raise RuntimeError("poison payload")
        return super().__call__(config)


def test_poison_job_is_quarantined_not_fatal(tmp_path):
    from repro.experiments.campaign import compile_campaign

    spec = tiny_spec(runs=2)
    jobs = compile_campaign(spec)
    journal = tmp_path / "poison.jsonl"
    result = CampaignRunner(
        spec,
        worker=_PoisonWorker(jobs[1].digest),
        journal_path=journal,
        retry=RetryPolicy(retries=1, backoff=0.0),
        sleep=lambda _s: None,
    ).run()
    # Every innocent job finished; exactly the poison one is quarantined.
    assert result.dead_lettered == 1
    assert result.executed == len(jobs) - 1
    assert not result.complete
    state = load_journal(journal)
    (payload,) = state.dead_letters.values()
    assert payload["digest"] == jobs[1].digest
    assert payload["attempts"] == 2  # first try + one retry
    assert "poison payload" in payload["error"]
    assert "RuntimeError" in payload["traceback"]

    # Resume with a healed worker completes, byte-identical to clean.
    clean = CampaignRunner(spec, worker=_FakeWorker()).run()
    resumed = CampaignRunner(
        spec, worker=_FakeWorker(), journal_path=journal, resume=True
    ).run()
    assert resumed.complete
    assert resumed.executed == 1
    assert _aggregate_json(resumed) == _aggregate_json(clean)


# ----------------------------------------------------------------------
# Graceful stop (the SIGINT path, minus the signal)
# ----------------------------------------------------------------------
def test_stop_flag_interrupts_with_journal_record(tmp_path):
    spec = tiny_spec(runs=2)
    journal = tmp_path / "stopped.jsonl"
    flag = {"stop": False}
    done = {"count": 0}

    class _CountingWorker(_FakeWorker):
        def __call__(self, config):
            done["count"] += 1
            if done["count"] >= 2:
                flag["stop"] = True
            return super().__call__(config)

    result = CampaignRunner(
        spec,
        worker=_CountingWorker(),
        journal_path=journal,
        stop=lambda: flag["stop"],
    ).run()
    assert result.interrupted == "signal"
    assert not result.complete
    assert 0 < result.executed < result.total_jobs
    state = load_journal(journal)
    assert state.interrupts == 1
    assert len(state.reports) == result.executed

    # The interrupt is clean: resume finishes and matches a clean run.
    clean = CampaignRunner(spec, worker=_FakeWorker()).run()
    resumed = CampaignRunner(
        spec, worker=_FakeWorker(), journal_path=journal, resume=True
    ).run()
    assert resumed.complete
    assert _aggregate_json(resumed) == _aggregate_json(clean)


# ----------------------------------------------------------------------
# Torn journal writes + tail self-repair
# ----------------------------------------------------------------------
def test_torn_write_interrupts_and_resume_is_byte_identical(tmp_path):
    spec = tiny_spec(runs=2)
    journal = tmp_path / "torn.jsonl"
    controller = HarnessFaultController(
        HarnessFaultPlan.of(TornJournalWrite(entry=1, fraction=0.4)),
        tmp_path / "fault-state",
    )
    result = CampaignRunner(
        spec,
        worker=_FakeWorker(),
        journal_path=journal,
        harness_faults=controller,
    ).run()
    assert result.interrupted == "torn_write"
    assert not result.complete
    # On disk: one full completion, then a torn (unterminated) line.
    raw = journal.read_bytes()
    assert not raw.endswith(b"\n")
    state = load_journal(journal, tolerate_partial=True)
    assert state.partial_lines == 1
    assert len(state.reports) == 1

    # Resume heals the tail (truncates the fragment), re-runs the torn
    # job, and lands on the clean-run aggregate byte for byte.
    clean = CampaignRunner(spec, worker=_FakeWorker()).run()
    resumed = CampaignRunner(
        spec,
        worker=_FakeWorker(),
        journal_path=journal,
        resume=True,
        harness_faults=controller,  # same state: the fault stays spent
    ).run()
    assert resumed.complete
    assert resumed.from_journal == 1
    assert resumed.executed == 3
    assert _aggregate_json(resumed) == _aggregate_json(clean)
    # The healed journal is fully parseable, no partial lines left.
    healed = load_journal(journal)
    assert healed.partial_lines == 0
    assert len(healed.reports) == 4


def test_journal_tail_self_repair_truncates_fragment(tmp_path):
    path = tmp_path / "frag.jsonl"
    path.write_text('{"event":"interrupt","reason":"x","completed":0}\n{"ev')
    journal = CampaignJournal(path)
    journal.interrupt(reason="signal", completed=0)
    journal.close()
    assert journal.repaired_tail_bytes == len('{"ev')
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    for line in lines:
        json.loads(line)  # every surviving line is whole


# ----------------------------------------------------------------------
# Corrupt result payloads
# ----------------------------------------------------------------------
def test_corrupt_result_is_caught_and_retried(tmp_path):
    spec = tiny_spec(runs=1)
    controller = HarnessFaultController(
        HarnessFaultPlan.of(CorruptResult(job=0)), tmp_path / "fault-state"
    )
    result = CampaignRunner(
        spec,
        worker=_FakeWorker(),
        retry=RetryPolicy(retries=1, backoff=0.0),
        harness_faults=controller,
        sleep=lambda _s: None,
    ).run()
    # The garbage payload never reached the aggregate: the job retried
    # (fault spent) and the campaign completed clean.
    assert result.complete
    assert result.retried == 1


def test_corrupt_result_never_reaches_journal(tmp_path):
    spec = tiny_spec(runs=1)
    journal = tmp_path / "corrupt.jsonl"
    controller = HarnessFaultController(
        HarnessFaultPlan.of(CorruptResult(job=0, times=5)),
        tmp_path / "fault-state",
    )
    result = CampaignRunner(
        spec,
        worker=_FakeWorker(),
        journal_path=journal,
        retry=RetryPolicy(retries=1, backoff=0.0),
        harness_faults=controller,
        sleep=lambda _s: None,
    ).run()
    # times=5 outlasts the retry budget: the job dead-letters instead of
    # a corrupt line ever landing in the journal.
    assert result.dead_lettered == 1
    state = load_journal(journal)
    (payload,) = state.dead_letters.values()
    assert "CorruptResultError" in payload["error"]
    for report in state.reports.values():
        assert isinstance(report, MetricsReport)


# ----------------------------------------------------------------------
# Process-backend supervision (real pools, real preemption)
# ----------------------------------------------------------------------
def test_process_hang_is_preempted_and_campaign_completes(tmp_path):
    spec = tiny_spec(runs=2)
    controller = HarnessFaultController(
        HarnessFaultPlan.of(WorkerHang(job=1, seconds=30.0)),
        tmp_path / "fault-state",
    )
    result = CampaignRunner(
        spec,
        make_backend("process", jobs=2),
        worker=_FakeWorker(),
        retry=RetryPolicy(retries=2, backoff=0.0),
        supervision=SupervisionPolicy(timeout=1.0),
        harness_faults=controller,
        sleep=lambda _s: None,
    ).run()
    assert result.complete
    assert result.timeouts >= 1
    assert result.retried >= 1


def test_process_hard_crash_is_dead_lettered_without_collateral(tmp_path):
    spec = tiny_spec(runs=2)
    journal = tmp_path / "hardcrash.jsonl"
    controller = HarnessFaultController(
        HarnessFaultPlan.of(WorkerCrash(job=0, hard=True, times=99)),
        tmp_path / "fault-state",
    )
    result = CampaignRunner(
        spec,
        make_backend("process", jobs=2),
        worker=_FakeWorker(),
        journal_path=journal,
        retry=RetryPolicy(retries=1, backoff=0.0),
        harness_faults=controller,
        sleep=lambda _s: None,
    ).run()
    # The poison job (killing its whole pool every attempt) is
    # quarantined; every innocent neighbour still completed.
    assert result.dead_lettered == 1
    assert result.executed == result.total_jobs - 1
    state = load_journal(journal)
    assert len(state.dead_letters) == 1
    assert len(state.reports) == result.total_jobs - 1


def test_acceptance_chaos_run_resumes_byte_identical(tmp_path):
    """ISSUE acceptance: >=1 worker crash, >=1 hang past the timeout,
    >=1 torn journal write — the campaign, resumed, must match a
    fault-free run byte for byte."""
    spec = tiny_spec(name="chaos-acceptance", runs=2)
    plan = HarnessFaultPlan.of(
        WorkerCrash(job=0),
        WorkerHang(job=1, seconds=30.0),
        TornJournalWrite(entry=2, fraction=0.5),
    )
    state_dir = tmp_path / "fault-state"
    journal = tmp_path / "chaos.jsonl"

    clean = CampaignRunner(spec, worker=_FakeWorker()).run()
    assert clean.complete

    first = CampaignRunner(
        spec,
        make_backend("process", jobs=2),
        worker=_FakeWorker(),
        journal_path=journal,
        retry=RetryPolicy(retries=2, backoff=0.0),
        supervision=SupervisionPolicy(timeout=1.0),
        harness_faults=HarnessFaultController(plan, state_dir),
        sleep=lambda _s: None,
    ).run()
    assert first.interrupted == "torn_write"
    assert not first.complete
    assert first.timeouts >= 1  # the hang was preempted

    resumed = CampaignRunner(
        spec,
        make_backend("process", jobs=2),
        worker=_FakeWorker(),
        journal_path=journal,
        resume=True,
        retry=RetryPolicy(retries=2, backoff=0.0),
        supervision=SupervisionPolicy(timeout=1.0),
        harness_faults=HarnessFaultController(plan, state_dir),
        sleep=lambda _s: None,
    ).run()
    assert resumed.complete
    assert resumed.from_journal >= 1
    assert _aggregate_json(resumed) == _aggregate_json(clean)


# ----------------------------------------------------------------------
# Trace sink degradation
# ----------------------------------------------------------------------
def test_sink_io_error_degrades_to_ring_buffer(tmp_path):
    from repro.obs.sinks import JsonlSink
    from repro.sim.trace import TraceLog

    controller = HarnessFaultController(
        HarnessFaultPlan.of(SinkIOError(write=1)), tmp_path / "fault-state"
    )
    log = TraceLog()
    sink = controller.wrap_sink(JsonlSink(tmp_path / "out.jsonl"))
    log.attach_sink(sink)
    log.emit(0.1, "mac_drop", node=1)
    with pytest.warns(RuntimeWarning, match="sink .* failed"):
        log.emit(0.2, "mac_drop", node=2)  # injected ENOSPC
    log.emit(0.3, "mac_drop", node=3)  # the run continues

    assert log.degraded_sinks == ["FaultySink"]
    assert log.sinks == ()  # the failed sink was detached
    assert log.capacity is not None  # unbounded store became a ring
    # All three records (plus the degradation marker) stayed queryable.
    assert log.count("mac_drop") == 3
    (marker,) = log.of_kind("sink_degraded")
    assert "ENOSPC" in marker["error"] or "injected" in marker["error"]


def test_sink_degradation_keeps_existing_capacity(tmp_path):
    from repro.sim.trace import TraceLog

    class _BrokenSink:
        def write(self, record):
            raise OSError(28, "No space left on device")

    log = TraceLog(capacity=8)
    log.attach_sink(_BrokenSink())
    with pytest.warns(RuntimeWarning):
        log.emit(0.1, "mac_drop", node=1)
    assert log.capacity == 8  # an explicit ring is left alone
    assert log.count("sink_degraded") == 1
