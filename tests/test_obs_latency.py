"""Detection-latency decomposition tests (synthetic record streams)."""

import pytest

from repro.obs.latency import (
    DURATIONS,
    STAGES,
    LatencyDecomposer,
    StageLatency,
    histogram,
    quantile,
    summarize,
    summarize_decompositions,
)
from repro.sim.trace import TraceLog, TraceRecord


def rec(time, kind, **fields):
    return TraceRecord(time=time, kind=kind, fields=fields)


def full_attack_records(node=7):
    """One attacker observed, accused, revoked, quorum'd, and isolated."""
    return [
        rec(10.0, "wormhole_activity", node=node),
        rec(12.0, "malicious_drop", node=node, packet=1),
        rec(15.0, "malc_increment", guard=1, accused=node, value=1,
            reason="drop", packet=1, total=1),
        rec(18.0, "malc_increment", guard=2, accused=node, value=1,
            reason="drop", packet=2, total=1),
        rec(20.0, "guard_detection", guard=1, accused=node),
        rec(21.0, "guard_detection", guard=2, accused=node),
        rec(24.0, "isolation", node=3, accused=node, alerts=3),
        rec(26.0, "isolation", node=4, accused=node, alerts=3),
    ]


def test_stages_assigned_in_causal_order():
    decomposer = LatencyDecomposer()
    for record in full_attack_records():
        decomposer.process(record)
    entry = decomposer.decomposition()[7]
    assert entry.attack_start == 10.0  # first activity, not the drop
    assert entry.first_malc == 15.0
    assert entry.local_revocation == 20.0
    assert entry.quorum == 24.0
    assert entry.full_isolation == 26.0  # last *new* revoker
    assert entry.complete
    assert entry.revokers == {1, 2, 3, 4}


def test_durations_and_headline_latencies():
    decomposer = LatencyDecomposer()
    for record in full_attack_records():
        decomposer.process(record)
    entry = decomposer.decomposition()[7]
    assert entry.durations() == {
        "observe": 5.0, "accumulate": 5.0, "disseminate": 4.0, "spread": 2.0,
    }
    assert entry.detection_latency == 10.0
    assert entry.total == 16.0


def test_repeat_revoker_does_not_advance_full_isolation():
    decomposer = LatencyDecomposer()
    for record in full_attack_records():
        decomposer.process(record)
    decomposer.process(rec(30.0, "guard_detection", guard=1, accused=7))
    entry = decomposer.decomposition()[7]
    assert entry.full_isolation == 26.0  # guard 1 already counted


def test_unreached_stages_stay_none():
    decomposer = LatencyDecomposer()
    decomposer.process(rec(5.0, "malicious_drop", node=9, packet=1))
    decomposer.process(rec(8.0, "malc_increment", guard=1, accused=9, value=1,
                           reason="drop", packet=1, total=1))
    entry = decomposer.decomposition()[9]
    assert entry.local_revocation is None
    assert entry.quorum is None
    assert not entry.complete
    assert entry.detection_latency is None
    assert entry.total is None
    assert entry.durations()["accumulate"] is None


def test_attacked_only_filters_false_accusations():
    decomposer = LatencyDecomposer()
    # Node 5 is accused but never shows ground-truth attack evidence.
    decomposer.process(rec(4.0, "malc_increment", guard=1, accused=5, value=1,
                           reason="drop", packet=1, total=1))
    decomposer.process(rec(6.0, "malicious_drop", node=7, packet=2))
    assert set(decomposer.decomposition()) == {7}
    assert set(decomposer.decomposition(attacked_only=False)) == {5, 7}


def test_attach_subscribes_to_live_trace():
    trace = TraceLog()
    decomposer = LatencyDecomposer()
    decomposer.attach(trace)
    for record in full_attack_records():
        trace.emit(record.time, record.kind, **record.fields)
    replay = LatencyDecomposer()
    for record in full_attack_records():
        replay.process(record)
    live_entry = decomposer.decomposition()[7]
    replay_entry = replay.decomposition()[7]
    assert live_entry.to_dict() == replay_entry.to_dict()


def test_stage_accessor_validates_names():
    entry = StageLatency(node=1, attack_start=2.0)
    assert entry.stage("attack_start") == 2.0
    with pytest.raises(KeyError):
        entry.stage("not_a_stage")


def test_to_dict_shape():
    decomposer = LatencyDecomposer()
    for record in full_attack_records():
        decomposer.process(record)
    payload = decomposer.decomposition()[7].to_dict()
    assert set(payload) == {
        "stages", "durations", "detection_latency", "total", "revokers",
    }
    assert set(payload["stages"]) == set(STAGES)
    assert set(payload["durations"]) == {name for name, _, _ in DURATIONS}
    assert payload["revokers"] == 4


# ----------------------------------------------------------------------
# Statistics helpers
# ----------------------------------------------------------------------
def test_quantile_interpolates_linearly():
    values = [0.0, 10.0]
    assert quantile(values, 0.0) == 0.0
    assert quantile(values, 0.5) == 5.0
    assert quantile(values, 1.0) == 10.0
    assert quantile([], 0.5) is None
    assert quantile([3.0], 0.9) == 3.0
    with pytest.raises(ValueError):
        quantile(values, 1.5)


def test_summarize_headline_stats():
    stats = summarize([1.0, 2.0, 3.0, 4.0])
    assert stats["count"] == 4
    assert stats["mean"] == pytest.approx(2.5)
    assert stats["min"] == 1.0 and stats["max"] == 4.0
    assert stats["p50"] == pytest.approx(2.5)
    empty = summarize([])
    assert empty["count"] == 0 and empty["mean"] is None


def test_histogram_equal_width_bins():
    result = histogram([0.0, 1.0, 2.0, 3.0, 4.0], bins=2)
    assert result["edges"] == [0.0, 2.0, 4.0]
    assert result["counts"] == [2, 3]  # max value lands in the last bin
    assert sum(result["counts"]) == 5


def test_histogram_degenerate_inputs():
    assert histogram([]) == {"edges": [], "counts": []}
    assert histogram([2.0, 2.0, 2.0]) == {"edges": [2.0, 2.0], "counts": [3]}
    with pytest.raises(ValueError):
        histogram([1.0], bins=0)


def test_summarize_decompositions_pools_replications():
    first, second = LatencyDecomposer(), LatencyDecomposer()
    for record in full_attack_records():
        first.process(record)
    for record in full_attack_records(node=11):
        second.process(record)
    summary = summarize_decompositions(
        [first.decomposition(), second.decomposition()]
    )
    assert set(summary) == {
        "observe", "accumulate", "disseminate", "spread",
        "detection_latency", "total",
    }
    assert summary["total"]["summary"]["count"] == 2
    assert summary["total"]["summary"]["mean"] == pytest.approx(16.0)
    assert sum(summary["observe"]["histogram"]["counts"]) == 2
