"""Tests for the ASCII visualization helpers."""

import pytest

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.viz import render_field, render_scenario, render_timeseries


def test_render_field_marks_symbols():
    positions = {0: (0.0, 0.0), 1: (50.0, 0.0), 2: (100.0, 100.0), 3: (0.0, 100.0)}
    text = render_field(positions, malicious=[1], isolated=[], highlight=[3])
    assert "W" in text
    assert "*" in text
    assert "." in text


def test_render_field_isolated_symbol():
    positions = {0: (0.0, 0.0), 1: (50.0, 50.0)}
    text = render_field(positions, malicious=[1], isolated=[1])
    assert "X" in text
    assert "W" not in text


def test_render_field_empty():
    assert render_field({}) == "(empty field)"


def test_render_field_single_node():
    text = render_field({0: (5.0, 5.0)})
    assert "." in text


def test_render_field_bad_canvas():
    with pytest.raises(ValueError):
        render_field({0: (0, 0)}, width=1)


def test_render_field_dimensions():
    positions = {0: (0.0, 0.0), 1: (10.0, 10.0)}
    text = render_field(positions, width=20, height=5)
    lines = text.splitlines()
    assert len(lines) == 5 + 2  # body + two borders
    assert all(len(line) == 22 for line in lines)


def test_render_scenario_shows_wormhole():
    scenario = build_scenario(
        ScenarioConfig(n_nodes=20, duration=60.0, seed=3, attack_start=30.0)
    )
    text = render_scenario(scenario)
    assert text.count("W") >= 1
    assert "legend" not in text  # legend text itself, not the word
    assert "wormhole" in text


def test_render_scenario_marks_isolation_after_run():
    scenario = build_scenario(
        ScenarioConfig(n_nodes=25, duration=200.0, seed=5, attack_start=30.0)
    )
    report = scenario.run()
    text = render_scenario(scenario)
    if len(report.isolation_times) == len(scenario.malicious_ids):
        assert "X" in text


def test_render_timeseries():
    text = render_timeseries([0.0, 5.0, 10.0], width=10)
    lines = text.splitlines()
    assert len(lines) == 3
    assert lines[2].count("#") == 10
    assert lines[0].count("#") == 0


def test_render_timeseries_empty():
    assert render_timeseries([]) == "(no data)"
