"""Nested wall-clock span profiler tests (deterministic fake clock)."""

import pytest

from repro.obs.spans import (
    SpanProfiler,
    activate,
    active_profiler,
    merge_flat,
    span,
)


class FakeClock:
    """Monotonic clock advanced explicitly by the test."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_single_span_records_count_and_seconds():
    clock = FakeClock()
    profiler = SpanProfiler(clock=clock)
    with profiler.span("build"):
        clock.advance(1.5)
    assert profiler.flat() == {"build": {"count": 1, "seconds": 1.5}}


def test_reentering_a_span_accumulates_into_one_node():
    clock = FakeClock()
    profiler = SpanProfiler(clock=clock)
    for _ in range(3):
        with profiler.span("run"):
            clock.advance(2.0)
    rows = profiler.flat()
    assert rows["run"]["count"] == 3
    assert rows["run"]["seconds"] == pytest.approx(6.0)


def test_nested_spans_form_paths():
    clock = FakeClock()
    profiler = SpanProfiler(clock=clock)
    with profiler.span("sweep"):
        clock.advance(0.5)
        with profiler.span("cache"):
            clock.advance(0.25)
        with profiler.span("cache"):
            clock.advance(0.25)
    rows = profiler.flat()
    assert set(rows) == {"sweep", "sweep/cache"}
    assert rows["sweep/cache"]["count"] == 2
    assert rows["sweep/cache"]["seconds"] == pytest.approx(0.5)
    # The parent's seconds include time spent inside children.
    assert rows["sweep"]["seconds"] == pytest.approx(1.0)


def test_same_name_at_different_depths_stays_distinct():
    clock = FakeClock()
    profiler = SpanProfiler(clock=clock)
    with profiler.span("build"):
        with profiler.span("build"):
            clock.advance(1.0)
    rows = profiler.flat()
    assert rows["build"]["count"] == 1
    assert rows["build/build"]["count"] == 1


def test_span_survives_exceptions():
    clock = FakeClock()
    profiler = SpanProfiler(clock=clock)
    with pytest.raises(RuntimeError):
        with profiler.span("explode"):
            clock.advance(0.5)
            raise RuntimeError("boom")
    assert profiler.depth == 0
    assert profiler.flat()["explode"]["seconds"] == pytest.approx(0.5)


def test_to_dict_nests_children():
    clock = FakeClock()
    profiler = SpanProfiler(clock=clock)
    with profiler.span("a"):
        with profiler.span("b"):
            clock.advance(1.0)
    tree = profiler.to_dict()
    assert tree["a"]["children"]["b"]["seconds"] == pytest.approx(1.0)


def test_module_span_is_noop_without_active_profiler():
    assert active_profiler() is None
    with span("anything") as node:
        assert node is None  # nothing recorded, nothing crashes


def test_activate_routes_module_spans_and_restores():
    clock = FakeClock()
    outer, inner = SpanProfiler(clock=clock), SpanProfiler(clock=clock)
    with activate(outer):
        with span("one"):
            clock.advance(1.0)
        with activate(inner):
            assert active_profiler() is inner
            with span("two"):
                clock.advance(2.0)
        assert active_profiler() is outer  # nesting restores
    assert active_profiler() is None
    assert "one" in outer.flat() and "two" not in outer.flat()
    assert inner.flat() == {"two": {"count": 1, "seconds": 2.0}}


def test_merge_flat_sums_counts_and_seconds():
    target = {"a": {"count": 1, "seconds": 1.0}}
    merge_flat(target, {"a": {"count": 2, "seconds": 0.5}, "b": {"count": 1, "seconds": 3.0}})
    assert target["a"] == {"count": 3, "seconds": 1.5}
    assert target["b"] == {"count": 1, "seconds": 3.0}


def test_format_renders_one_line_per_path():
    clock = FakeClock()
    profiler = SpanProfiler(clock=clock)
    with profiler.span("outer"):
        with profiler.span("inner"):
            clock.advance(1.0)
    text = profiler.format()
    assert "outer" in text and "inner" in text
    assert len(text.splitlines()) == 2


def test_harness_spans_appear_when_profiling_a_run():
    from repro.experiments.scenario import ScenarioConfig, build_scenario

    profiler = SpanProfiler()
    with activate(profiler):
        scenario = build_scenario(
            ScenarioConfig(n_nodes=16, duration=30.0, seed=4, attack_start=20.0)
        )
        scenario.run()
    rows = profiler.flat()
    assert "scenario.build" in rows
    assert "scenario.run" in rows
    assert "scenario.run/metrics.collect" not in rows  # siblings, not nested
    assert "metrics.collect" in rows
    assert rows["scenario.run"]["seconds"] > 0.0
