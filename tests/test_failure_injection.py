"""Failure-injection and robustness tests.

- Ambient packet loss on top of collisions.
- Guard crash-stop failures (a fraction of monitors die).
- A framing attack: one compromised guard tries to get an honest node
  isolated with false alerts — θ > 1 defends.
"""

from dataclasses import replace

import pytest

from repro.core.agent import LiteworpAgent
from repro.core.config import LiteworpConfig
from repro.crypto.auth import Authenticator
from repro.crypto.keys import PairwiseKeyManager
from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.net.network import NetworkConfig
from repro.net.packet import AlertPacket, Frame
from repro.net.topology import grid_topology
from tests.conftest import Harness


def test_detection_survives_ambient_loss():
    config = ScenarioConfig(
        n_nodes=30,
        duration=200.0,
        seed=5,
        attack_start=30.0,
        network=NetworkConfig(ambient_loss=0.05),
    )
    scenario = build_scenario(config)
    report = scenario.run()
    detected = {
        record["accused"]
        for record in scenario.trace.of_kind("guard_detection")
        if record["accused"] in set(scenario.malicious_ids)
    }
    assert detected  # still detects under 5% extra loss


def test_no_false_isolations_under_ambient_loss():
    config = ScenarioConfig(
        n_nodes=30,
        duration=200.0,
        seed=5,
        attack_mode="none",
        n_malicious=0,
        network=NetworkConfig(ambient_loss=0.05),
    )
    scenario = build_scenario(config)
    scenario.run()
    assert scenario.trace.count("isolation") == 0


def test_guard_crashes_degrade_but_do_not_break_detection():
    """Disable monitoring on a third of the honest nodes: detection must
    still happen (redundant guards are the point of local monitoring)."""
    config = ScenarioConfig(n_nodes=30, duration=200.0, seed=5, attack_start=30.0)
    scenario = build_scenario(config)
    crashed = list(scenario.agents)[::3]
    for node_id in crashed:
        scenario.agents[node_id].monitor.enabled = False
    report = scenario.run()
    detected = {
        record["accused"]
        for record in scenario.trace.of_kind("guard_detection")
        if record["accused"] in set(scenario.malicious_ids)
    }
    assert detected


def test_framing_attack_defeated_by_theta():
    """One compromised guard floods alerts against an honest victim; with
    θ = 3 nobody isolates the victim."""
    harness = Harness(grid_topology(columns=3, rows=3, spacing=10.0, tx_range=30.0))
    keys = PairwiseKeyManager()
    config = LiteworpConfig(theta=3)
    agents = {}
    adjacency = harness.topology.adjacency()
    for node_id in harness.topology.node_ids:
        agent = LiteworpAgent(
            harness.sim, harness.node(node_id), keys.enroll(node_id), config, harness.trace
        )
        agent.install_oracle(adjacency)
        agents[node_id] = agent
    liar, victim = 0, 4
    # The liar is an insider: its alerts authenticate correctly.
    for recipient in adjacency[victim]:
        if recipient == liar:
            continue
        key = keys.pairwise_key(liar, recipient)
        alert = AlertPacket(
            guard=liar, accused=victim, recipient=recipient,
            auth=Authenticator.tag(key, "alert", liar, victim, recipient),
        )
        harness.node(liar).unicast(alert, next_hop=recipient, jitter=0.0)
    harness.run(10.0)
    for node_id, agent in agents.items():
        if node_id in (liar, victim):
            continue
        assert not agent.has_isolated(victim), f"node {node_id} was framed!"
        assert agent.table.alert_count(victim) == 1  # one liar = one alert


def test_framing_succeeds_only_with_theta_colluding_guards():
    """Control for the previous test: θ distinct lying insiders CAN frame —
    the paper's trust model bounds tolerable collusion by θ - 1."""
    harness = Harness(grid_topology(columns=3, rows=3, spacing=10.0, tx_range=30.0))
    keys = PairwiseKeyManager()
    config = LiteworpConfig(theta=2)
    agents = {}
    adjacency = harness.topology.adjacency()
    for node_id in harness.topology.node_ids:
        agent = LiteworpAgent(
            harness.sim, harness.node(node_id), keys.enroll(node_id), config, harness.trace
        )
        agent.install_oracle(adjacency)
        agents[node_id] = agent
    liars, victim, observer = (0, 1), 4, 8
    for liar in liars:
        key = keys.pairwise_key(liar, observer)
        alert = AlertPacket(
            guard=liar, accused=victim, recipient=observer,
            auth=Authenticator.tag(key, "alert", liar, victim, observer),
        )
        harness.node(liar).unicast(alert, next_hop=observer, jitter=0.0)
    harness.run(10.0)
    assert agents[observer].has_isolated(victim)


def test_mac_saturation_does_not_deadlock():
    """Flood the MAC of one node far beyond channel capacity: the run must
    terminate and account for every frame (sent or dropped)."""
    harness = Harness(grid_topology(columns=2, rows=1, spacing=10.0, tx_range=30.0))
    from repro.net.packet import DataPacket
    node = harness.node(0)
    for sequence in range(300):
        node.unicast(
            DataPacket(origin=0, destination=1, sequence=sequence),
            next_hop=1, jitter=0.0,
        )
    harness.run(60.0)
    mac = node.mac
    assert mac.queue_length == 0
    assert mac.sent + mac.dropped >= 300
