"""Failure-injection and robustness tests.

Environmental faults are expressed as :class:`~repro.faults.plan.FaultPlan`
documents executed by the :class:`~repro.faults.controller.FaultController`
(wired in automatically by ``build_scenario`` via
``ScenarioConfig.fault_plan``):

- Ambient packet loss on top of collisions (``LossBurst``).
- Guard crash-stop failures mid-run (``CrashStop``).
- MAC saturation flooding (``MacSaturation``).
- A framing attack: one compromised guard tries to get an honest node
  isolated with false alerts — θ > 1 defends.
"""

from dataclasses import replace

from repro.core.agent import LiteworpAgent
from repro.core.config import LiteworpConfig
from repro.crypto.auth import Authenticator
from repro.crypto.keys import PairwiseKeyManager
from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.faults.controller import FaultController
from repro.faults.plan import CrashStop, FaultPlan, LossBurst, MacSaturation
from repro.net.packet import AlertPacket
from repro.net.topology import grid_topology
from tests.conftest import Harness


def test_detection_survives_ambient_loss():
    """A 5% channel-wide loss burst covering the whole run must not stop
    the guards from detecting the wormhole."""
    config = ScenarioConfig(
        n_nodes=30,
        duration=200.0,
        seed=5,
        attack_start=30.0,
        fault_plan=FaultPlan.of(LossBurst(at=0.0, probability=0.05, duration=200.0)),
    )
    scenario = build_scenario(config)
    scenario.run()
    detected = {
        record["accused"]
        for record in scenario.trace.of_kind("guard_detection")
        if record["accused"] in set(scenario.malicious_ids)
    }
    assert detected  # still detects under 5% extra loss
    assert scenario.fault_controller is not None
    assert scenario.fault_controller.injected == 1


def test_no_false_isolations_under_ambient_loss():
    config = ScenarioConfig(
        n_nodes=30,
        duration=200.0,
        seed=5,
        attack_mode="none",
        n_malicious=0,
        fault_plan=FaultPlan.of(LossBurst(at=0.0, probability=0.05, duration=200.0)),
    )
    scenario = build_scenario(config)
    scenario.run()
    assert scenario.trace.count("isolation") == 0


def test_guard_crashes_degrade_but_do_not_break_detection():
    """Crash-stop a third of the honest nodes shortly after the attack
    begins: detection must still happen (redundant guards are the point
    of local monitoring)."""
    base = ScenarioConfig(n_nodes=30, duration=200.0, seed=5, attack_start=30.0)
    probe = build_scenario(base)  # cheap: learn the malicious placement
    malicious = set(probe.malicious_ids)
    honest = [n for n in probe.topology.node_ids if n not in malicious]
    plan = FaultPlan.of(
        *(CrashStop(at=35.0, node=node) for node in honest[::3])
    )
    scenario = build_scenario(replace(base, fault_plan=plan))
    scenario.run()
    detected = {
        record["accused"]
        for record in scenario.trace.of_kind("guard_detection")
        if record["accused"] in malicious
    }
    assert detected
    assert scenario.trace.count("fault_injected") == len(plan)


def test_framing_attack_defeated_by_theta():
    """One compromised guard floods alerts against an honest victim; with
    θ = 3 nobody isolates the victim."""
    harness = Harness(grid_topology(columns=3, rows=3, spacing=10.0, tx_range=30.0))
    keys = PairwiseKeyManager()
    config = LiteworpConfig(theta=3)
    agents = {}
    adjacency = harness.topology.adjacency()
    for node_id in harness.topology.node_ids:
        agent = LiteworpAgent(
            harness.sim, harness.node(node_id), keys.enroll(node_id), config, harness.trace
        )
        agent.install_oracle(adjacency)
        agents[node_id] = agent
    liar, victim = 0, 4
    # The liar is an insider: its alerts authenticate correctly.
    for recipient in adjacency[victim]:
        if recipient == liar:
            continue
        key = keys.pairwise_key(liar, recipient)
        alert = AlertPacket(
            guard=liar, accused=victim, recipient=recipient,
            auth=Authenticator.tag(key, "alert", liar, victim, recipient),
        )
        harness.node(liar).unicast(alert, next_hop=recipient, jitter=0.0)
    harness.run(10.0)
    for node_id, agent in agents.items():
        if node_id in (liar, victim):
            continue
        assert not agent.has_isolated(victim), f"node {node_id} was framed!"
        assert agent.table.alert_count(victim) == 1  # one liar = one alert


def test_framing_succeeds_only_with_theta_colluding_guards():
    """Control for the previous test: θ distinct lying insiders CAN frame —
    the paper's trust model bounds tolerable collusion by θ - 1."""
    harness = Harness(grid_topology(columns=3, rows=3, spacing=10.0, tx_range=30.0))
    keys = PairwiseKeyManager()
    config = LiteworpConfig(theta=2)
    agents = {}
    adjacency = harness.topology.adjacency()
    for node_id in harness.topology.node_ids:
        agent = LiteworpAgent(
            harness.sim, harness.node(node_id), keys.enroll(node_id), config, harness.trace
        )
        agent.install_oracle(adjacency)
        agents[node_id] = agent
    liars, victim, observer = (0, 1), 4, 8
    for liar in liars:
        key = keys.pairwise_key(liar, observer)
        alert = AlertPacket(
            guard=liar, accused=victim, recipient=observer,
            auth=Authenticator.tag(key, "alert", liar, victim, observer),
        )
        harness.node(liar).unicast(alert, next_hop=observer, jitter=0.0)
    harness.run(10.0)
    assert agents[observer].has_isolated(victim)


def test_mac_saturation_does_not_deadlock():
    """Flood one node's MAC far beyond channel capacity via the
    ``MacSaturation`` fault: the run must terminate and account for every
    frame (sent or dropped)."""
    harness = Harness(grid_topology(columns=2, rows=1, spacing=10.0, tx_range=30.0))
    controller = FaultController(harness.network, harness.trace)
    controller.apply(
        FaultPlan.of(MacSaturation(at=0.0, node=0, duration=3.0, rate=100.0))
    )
    harness.run(60.0)
    mac = harness.node(0).mac
    assert controller.injected == 1
    assert controller.cleared == 1
    assert mac.queue_length == 0
    assert mac.sent + mac.dropped >= 300
