"""Parity tests: the C kernel honours the exact Simulator contract.

Every behavioural test in test_sim_engine.py is mirrored here against
whichever kernels are available, plus differential tests that drive both
kernels through randomized schedule/cancel workloads and require
identical firing order, clocks and counters.  The accelerated kernel is
only allowed to exist if it is indistinguishable from the reference.
"""

import gc
import random
import weakref

import pytest

from repro.sim import accel
from repro.sim.engine import SimulationError, Simulator as PySimulator


def _kernels():
    kernels = [pytest.param(PySimulator, id="python")]
    if accel.kernel_available():
        module = accel._load()
        kernels.append(pytest.param(module.Simulator, id="ckernel"))
    return kernels


@pytest.fixture(params=_kernels())
def simcls(request):
    return request.param


def test_time_order_and_fifo_ties(simcls):
    sim = simcls()
    fired = []
    sim.schedule(2.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    for tag in ("a", "b", "c"):
        sim.schedule(3.0, fired.append, tag)
    sim.run()
    assert fired == ["early", "late", "a", "b", "c"]


def test_run_until_inclusive_and_clock(simcls):
    sim = simcls()
    fired = []
    sim.schedule(2.0, fired.append, "at-horizon")
    sim.schedule(2.0001, fired.append, "after-horizon")
    sim.run(until=2.0)
    assert fired == ["at-horizon"]
    assert sim.now == 2.0
    sim.run(until=10.0)
    assert fired == ["at-horizon", "after-horizon"]


def test_cancellation_semantics(simcls):
    sim = simcls()
    fired = []
    event = sim.schedule(1.0, fired.append, "nope")
    event.cancel()
    event.cancel()
    sim.run()
    assert fired == []
    assert event.cancelled and not event.fired and not event.pending
    done = sim.schedule(1.0, fired.append, "yes")
    sim.run()
    done.cancel()
    assert done.fired and not done.cancelled


def test_validation_errors(simcls):
    sim = simcls()
    for bad in (-0.1, float("inf"), float("nan")):
        with pytest.raises(SimulationError):
            sim.schedule(bad, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.run(until=0.5)


def test_reentrant_run_rejected(simcls):
    sim = simcls()
    caught = []

    def reenter():
        with pytest.raises(SimulationError):
            sim.run()
        caught.append(True)

    sim.schedule(0.1, reenter)
    sim.run()
    assert caught == [True]


def test_step_and_peek_skip_cancelled(simcls):
    sim = simcls()
    fired = []
    first = sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    first.cancel()
    assert sim.peek_time() == 2.0
    assert sim.step()
    assert fired == ["b"]
    assert not sim.step()
    assert sim.peek_time() is None


def test_counters_kwargs_and_start_time(simcls):
    sim = simcls(start_time=100.0)
    assert sim.now == 100.0
    seen = {}
    sim.schedule(1.0, lambda **kw: seen.update(kw), x=1, y="two")
    events = [sim.schedule(2.0, lambda: None) for _ in range(3)]
    events[0].cancel()
    assert sim.pending_count == 3
    sim.run(max_events=3)
    assert seen == {"x": 1, "y": "two"}
    assert sim.events_processed == 3
    assert sim.now == 102.0


def test_events_can_schedule_more_events(simcls):
    sim = simcls()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            sim.schedule(1.0, chain, depth + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_callback_exception_propagates_and_resets_guard(simcls):
    sim = simcls()

    def boom():
        raise ValueError("boom")

    sim.schedule(1.0, boom)
    sim.schedule(2.0, lambda: None)
    with pytest.raises(ValueError):
        sim.run()
    # The guard must reset so the simulator stays usable.
    sim.run()
    assert sim.now == 2.0


def test_compaction_drops_cancelled_entries(simcls):
    sim = simcls()
    events = [sim.schedule(1000.0 + i * 0.001, lambda: None) for i in range(20000)]
    for event in events[:18000]:
        event.cancel()
    for _ in range(15000):
        sim.schedule(0.5, lambda: None)
    assert sim.compactions >= 1
    assert sim.pending_count == 2000 + 15000
    sim.run(until=2000.0)
    assert sim.events_processed == 2000 + 15000


def _drive(simcls, seed):
    """Randomized schedule/cancel workload; returns the full firing record."""
    rng = random.Random(seed)
    sim = simcls()
    log = []
    live = []

    def cb(tag):
        log.append((sim.now, tag))
        for _ in range(rng.randrange(0, 3)):
            delay = rng.choice(
                [0.0, 1e-4, 0.003, 0.5, 5.0, 120.0, rng.random() * 30]
            )
            live.append(sim.schedule(delay, cb, rng.randrange(10**6)))
        if live and rng.random() < 0.3:
            live.pop(rng.randrange(len(live))).cancel()

    for i in range(50):
        live.append(sim.schedule(rng.random() * 10, cb, i))
    sim.run(until=400.0, max_events=20000)
    return log, sim.now, sim.events_processed, sim.pending_count


@pytest.mark.skipif(not accel.kernel_available(), reason="C kernel unavailable")
@pytest.mark.parametrize("seed", range(10))
def test_differential_random_workload(seed):
    module = accel._load()
    assert _drive(PySimulator, seed) == _drive(module.Simulator, seed)


@pytest.mark.skipif(not accel.kernel_available(), reason="C kernel unavailable")
def test_ckernel_collects_reference_cycles():
    module = accel._load()

    class Probe:
        pass

    def make_cycle():
        sim = module.Simulator()
        probe = Probe()
        sim.schedule(1e6, lambda: (sim, probe))
        return weakref.ref(probe)

    ref = make_cycle()
    gc.collect()
    assert ref() is None


def test_make_simulator_respects_reference_mode():
    from repro.sim.engine import make_simulator

    with accel.reference_mode():
        assert type(make_simulator()) is PySimulator
        assert accel.reference_active()
        assert not accel.enabled()
    assert not accel.reference_active()
    if accel.kernel_available():
        assert type(make_simulator()) is accel._load().Simulator
