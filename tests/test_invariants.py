"""Cross-cutting conservation and invariant checks on full scenario runs.

These are the "bookkeeping can't lie" tests: whatever the attack and
defense do, the physical and accounting layers must balance.
"""

import pytest

from repro.experiments.scenario import ScenarioConfig, build_scenario


@pytest.fixture(scope="module")
def attacked_run():
    scenario = build_scenario(
        ScenarioConfig(n_nodes=30, duration=150.0, seed=5, attack_start=30.0)
    )
    receptions = []
    scenario.network.channel.add_reception_observer(receptions.append)
    transmissions = []
    scenario.network.channel.add_tx_observer(
        lambda sender, frame, time: transmissions.append((sender, frame))
    )
    report = scenario.run()
    return scenario, report, transmissions, receptions


def test_reception_accounting_balances(attacked_run):
    """Every reception was either delivered to the node or traced as lost."""
    scenario, _report, _tx, receptions = attacked_run
    delivered = sum(node.frames_received for node in scenario.network.nodes.values())
    lost = scenario.trace.count("rx_lost")
    assert delivered + lost == len(receptions)


def test_channel_tx_counter_matches_observer(attacked_run):
    scenario, _report, transmissions, _rx = attacked_run
    assert scenario.network.channel.transmissions == len(transmissions)


def test_mac_accounting_balances(attacked_run):
    """Each MAC's sent counter matches the channel's view of its node."""
    scenario, _report, transmissions, _rx = attacked_run
    from collections import Counter
    by_sender = Counter(sender for sender, _frame in transmissions)
    for node_id, node in scenario.network.nodes.items():
        assert node.mac.sent == by_sender.get(node_id, 0)


def test_delivered_data_never_exceeds_originated(attacked_run):
    _scenario, report, _tx, _rx = attacked_run
    assert report.delivered <= report.originated


def test_wormhole_drops_only_after_attack_start(attacked_run):
    scenario, report, _tx, _rx = attacked_run
    assert all(t >= scenario.config.attack_start for t in report.drop_times)


def test_drop_times_sorted(attacked_run):
    _scenario, report, _tx, _rx = attacked_run
    assert list(report.drop_times) == sorted(report.drop_times)


def test_every_isolation_has_prior_activity(attacked_run):
    _scenario, report, _tx, _rx = attacked_run
    for node, done in report.isolation_times.items():
        assert node in report.first_activity
        assert done >= report.first_activity[node]


def test_malc_only_on_neighbors(attacked_run):
    """Guards can only ever accuse nodes they could actually watch."""
    scenario, _report, _tx, _rx = attacked_run
    for record in scenario.trace.of_kind("malc_increment"):
        guard, accused = record["guard"], record["accused"]
        assert accused in scenario.network.neighbors(guard)


def test_alerts_only_about_neighbors_of_recipient(attacked_run):
    scenario, _report, _tx, _rx = attacked_run
    for record in scenario.trace.of_kind("alert_accepted"):
        node, accused = record["node"], record["accused"]
        assert accused in scenario.network.neighbors(node)


def test_trace_times_nondecreasing_per_kind(attacked_run):
    scenario, _report, _tx, _rx = attacked_run
    for kind in ("data_origin", "route_established", "guard_detection"):
        times = [r.time for r in scenario.trace.of_kind(kind)]
        assert times == sorted(times)


def test_honest_nodes_never_emit_malicious_drops(attacked_run):
    scenario, _report, _tx, _rx = attacked_run
    bad = set(scenario.malicious_ids)
    for record in scenario.trace.of_kind("malicious_drop"):
        assert record["node"] in bad
