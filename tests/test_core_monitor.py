"""Unit tests for the local monitor (guard logic).

The monitor is driven directly with hand-built frames — no radio — so each
behaviour (fabrication, drop, clearing, grace suppression, windows) is
isolated.
"""


from repro.core.config import LiteworpConfig
from repro.core.monitor import WATCH_SAMPLE_PERIOD, LocalMonitor
from repro.core.tables import NeighborTable
from repro.net.packet import (
    DataPacket,
    Frame,
    RouteErrorPacket,
    RouteReply,
    RouteRequest,
)
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog


GUARD = 0


def build(config=None, neighbors=(1, 2, 3)):
    sim = Simulator()
    trace = TraceLog()
    table = NeighborTable(owner=GUARD)
    for n in neighbors:
        table.add_neighbor(n)
    detections = []
    monitor = LocalMonitor(
        sim, GUARD, table, config or LiteworpConfig(), trace, detections.append
    )
    return sim, monitor, table, detections, trace


def req(origin=9, rid=1):
    return RouteRequest(origin=origin, request_id=rid, target=8, hop_count=0)


def rep(origin=9, rid=1, target=8):
    return RouteReply(origin=origin, request_id=rid, target=target, hop_count=3)


def test_truthful_forward_not_accused():
    sim, monitor, table, detections, _ = build()
    packet = req()
    # Guard hears node 1 transmit, then node 2 forward claiming prev=1.
    monitor.observe(Frame(packet=packet, transmitter=1))
    monitor.observe(Frame(packet=packet, transmitter=2, prev_hop=1))
    assert monitor.fabrications_seen == 0
    assert table.malc(2, sim.now, 200.0) == 0


def test_fabrication_detected():
    sim, monitor, table, detections, trace = build()
    packet = req()
    # Node 2 forwards claiming prev=1, but 1 never transmitted it.
    monitor.observe(Frame(packet=packet, transmitter=2, prev_hop=1))
    assert monitor.fabrications_seen == 1
    assert table.malc(2, sim.now, 200.0) == LiteworpConfig().v_fabricate
    record = trace.first("malc_increment", reason="fabrication")
    assert record is not None and record["accused"] == 2


def test_fabrication_requires_guard_position():
    sim, monitor, table, detections, _ = build(neighbors=(2,))
    # Claimed prev-hop 1 is NOT our neighbor: we cannot judge.
    monitor.observe(Frame(packet=req(), transmitter=2, prev_hop=1))
    assert monitor.fabrications_seen == 0


def test_fabrication_by_non_neighbor_ignored():
    sim, monitor, table, detections, _ = build(neighbors=(1,))
    monitor.observe(Frame(packet=req(), transmitter=7, prev_hop=1))
    assert monitor.fabrications_seen == 0


def test_originated_packets_never_fabrications():
    sim, monitor, table, detections, _ = build()
    monitor.observe(Frame(packet=req(), transmitter=2, prev_hop=None))
    assert monitor.fabrications_seen == 0


def test_own_transmission_satisfies_fabrication_check():
    sim, monitor, table, detections, _ = build()
    packet = rep()
    monitor.observe_own(Frame(packet=packet, transmitter=GUARD, link_dst=2))
    # Node 2 forwards claiming prev=GUARD: fine, we really sent it...
    # (GUARD is not its own neighbor, so use a neighbor claim instead.)
    assert monitor.heard_transmission(packet.key(), GUARD)


def test_drop_detected_after_deadline():
    config = LiteworpConfig(delta=0.5)
    sim, monitor, table, detections, trace = build(config)
    packet = rep(origin=9)
    # Node 1 hands the reply to node 2 (2 is not the reply's origin).
    monitor.observe(Frame(packet=packet, transmitter=1, link_dst=2, prev_hop=None))
    assert monitor.watch_buffer_size == 1
    sim.run(until=1.0)
    assert monitor.drops_seen == 1
    assert table.malc(2, sim.now, 200.0) == config.v_drop
    assert monitor.watch_buffer_size == 0


def test_watch_buffer_gauge_sampled_and_throttled():
    config = LiteworpConfig(delta=10.0)
    sim, monitor, table, detections, trace = build(config)
    # First insertion emits immediately (size 0 -> 1).
    monitor.observe(Frame(packet=rep(rid=1), transmitter=1, link_dst=2))
    gauges = trace.of_kind("watch_buffer")
    assert len(gauges) == 1
    assert gauges[0]["guard"] == GUARD
    assert gauges[0]["size"] == 1
    # More churn within the sample period stays silent...
    monitor.observe(Frame(packet=rep(rid=2), transmitter=1, link_dst=2))
    monitor.observe(Frame(packet=rep(rid=3), transmitter=1, link_dst=2))
    assert len(trace.of_kind("watch_buffer")) == 1
    # ...but once the period elapses the next size change is recorded.
    sim.run(until=WATCH_SAMPLE_PERIOD + 0.1)
    monitor.observe(Frame(packet=rep(rid=4), transmitter=1, link_dst=2))
    gauges = trace.of_kind("watch_buffer")
    assert len(gauges) == 2
    assert gauges[-1]["size"] == 4
    assert gauges[-1]["peak"] == 4


def test_watch_buffer_gauge_skips_unchanged_size():
    config = LiteworpConfig(delta=0.2)
    sim, monitor, table, detections, trace = build(config)
    monitor.observe(Frame(packet=rep(rid=1), transmitter=1, link_dst=2))
    assert len(trace.of_kind("watch_buffer")) == 1  # 0 -> 1 emits
    # The 0.2 s drop deadline empties the buffer inside the throttle
    # window (no gauge), so a later insertion restoring the last-sampled
    # size (1) is also silent: the gauge records changes relative to the
    # last *emitted* sample, not every transition.
    sim.run(until=2.0)
    monitor.observe(Frame(packet=rep(rid=2), transmitter=1, link_dst=2))
    assert len(trace.of_kind("watch_buffer")) == 1


def test_forward_clears_watch_entry():
    config = LiteworpConfig(delta=0.5)
    sim, monitor, table, detections, _ = build(config)
    packet = rep(origin=3)  # node 3 is the reply's terminal consumer
    monitor.observe(Frame(packet=packet, transmitter=1, link_dst=2, prev_hop=None))
    sim.run(until=0.1)
    monitor.observe(Frame(packet=packet, transmitter=2, link_dst=3, prev_hop=1))
    sim.run(until=2.0)
    assert monitor.drops_seen == 0


def test_reply_terminal_consumer_not_watched():
    sim, monitor, table, detections, _ = build()
    packet = rep(origin=2)  # node 2 IS the reply's origin
    monitor.observe(Frame(packet=packet, transmitter=1, link_dst=2))
    assert monitor.watch_buffer_size == 0


def test_data_not_watched_by_default():
    sim, monitor, table, detections, _ = build()
    data = DataPacket(origin=9, destination=8, flow_id=8, sequence=1)
    monitor.observe(Frame(packet=data, transmitter=1, link_dst=2))
    assert monitor.watch_buffer_size == 0


def test_data_watched_with_extension():
    config = LiteworpConfig(watch_data=True)
    sim, monitor, table, detections, _ = build(config)
    data = DataPacket(origin=9, destination=8, flow_id=8, sequence=1)
    monitor.observe(Frame(packet=data, transmitter=1, link_dst=2))
    assert monitor.watch_buffer_size == 1
    sim.run(until=2.0)
    assert monitor.drops_seen == 1


def test_data_terminal_consumer_not_watched_with_extension():
    config = LiteworpConfig(watch_data=True)
    sim, monitor, table, detections, _ = build(config)
    data = DataPacket(origin=9, destination=2, flow_id=2, sequence=1)
    monitor.observe(Frame(packet=data, transmitter=1, link_dst=2))
    assert monitor.watch_buffer_size == 0


def test_route_error_clears_expectation():
    config = LiteworpConfig(delta=0.5)
    sim, monitor, table, detections, _ = build(config)
    packet = rep(origin=9)
    monitor.observe(Frame(packet=packet, transmitter=1, link_dst=2))
    rerr = RouteErrorPacket(reporter=2, inner_key=packet.key())
    monitor.observe(Frame(packet=rerr, transmitter=2))
    sim.run(until=2.0)
    assert monitor.drops_seen == 0


def test_detection_fires_at_threshold():
    config = LiteworpConfig(c_t=4, v_fabricate=2)
    sim, monitor, table, detections, _ = build(config)
    monitor.observe(Frame(packet=req(rid=1), transmitter=2, prev_hop=1))
    assert detections == []
    monitor.observe(Frame(packet=req(rid=2), transmitter=2, prev_hop=1))
    assert detections == [2]
    assert monitor.has_detected(2)


def test_detection_fires_once():
    config = LiteworpConfig(c_t=2, v_fabricate=2)
    sim, monitor, table, detections, _ = build(config)
    for rid in range(1, 4):
        monitor.observe(Frame(packet=req(rid=rid), transmitter=2, prev_hop=1))
    assert detections == [2]


def test_malc_window_resets_old_evidence():
    config = LiteworpConfig(c_t=4, v_fabricate=2, malc_window=10.0)
    sim, monitor, table, detections, _ = build(config)
    monitor.observe(Frame(packet=req(rid=1), transmitter=2, prev_hop=1))
    sim.run(until=20.0)  # the first increment ages out of the window
    monitor.observe(Frame(packet=req(rid=2), transmitter=2, prev_hop=1))
    assert detections == []
    assert monitor.malc(2) == 2


def test_grace_suppresses_fabrication_after_loss():
    config = LiteworpConfig(fabrication_grace=1.0)
    sim, monitor, table, detections, _ = build(config)
    monitor.note_reception_loss(sim.now)
    monitor.observe(Frame(packet=req(), transmitter=2, prev_hop=1))
    assert monitor.fabrications_seen == 0
    assert monitor.suppressed_accusations == 1


def test_grace_expires():
    config = LiteworpConfig(fabrication_grace=1.0)
    sim, monitor, table, detections, _ = build(config)
    monitor.note_reception_loss(0.0)
    sim.run(until=5.0)
    monitor.observe(Frame(packet=req(), transmitter=2, prev_hop=1))
    assert monitor.fabrications_seen == 1


def test_loss_during_watch_suppresses_drop():
    config = LiteworpConfig(delta=0.5)
    sim, monitor, table, detections, _ = build(config)
    packet = rep(origin=9)
    monitor.observe(Frame(packet=packet, transmitter=1, link_dst=2))
    sim.schedule(0.2, monitor.note_reception_loss, 0.2)
    sim.run(until=2.0)
    assert monitor.drops_seen == 0
    assert monitor.suppressed_accusations == 1


def test_overheard_window_expiry_causes_fabrication():
    config = LiteworpConfig(overheard_window=5.0, fabrication_grace=0.5)
    sim, monitor, table, detections, _ = build(config)
    packet = req()
    monitor.observe(Frame(packet=packet, transmitter=1))
    sim.run(until=10.0)  # the overheard entry ages out
    monitor.observe(Frame(packet=packet, transmitter=2, prev_hop=1))
    assert monitor.fabrications_seen == 1


def test_disabled_monitor_sees_nothing():
    config = LiteworpConfig(monitor_enabled=False)
    sim, monitor, table, detections, _ = build(config)
    monitor.observe(Frame(packet=req(), transmitter=2, prev_hop=1))
    assert monitor.fabrications_seen == 0


def test_no_accusation_after_revocation():
    config = LiteworpConfig(c_t=2, v_fabricate=2)
    sim, monitor, table, detections, _ = build(config)
    table.revoke(2)
    monitor.observe(Frame(packet=req(), transmitter=2, prev_hop=1))
    assert table.malc(2, sim.now, 200.0) == 0


def test_watch_buffer_peak_tracked():
    sim, monitor, table, detections, _ = build()
    for rid in range(1, 4):
        monitor.observe(Frame(packet=rep(rid=rid), transmitter=1, link_dst=2))
    assert monitor.watch_buffer_peak == 3


def test_watch_request_drops_extension():
    config = LiteworpConfig(watch_request_drops=True, delta=0.5)
    sim, monitor, table, detections, _ = build(config)
    table.set_neighbor_list(1, (GUARD, 2, 3))
    packet = req(origin=9)
    # Node 1 broadcasts the request; common neighbors 2 and 3 should forward.
    monitor.observe(Frame(packet=packet, transmitter=1))
    assert monitor.watch_buffer_size == 2
    sim.run(until=2.0)
    assert monitor.drops_seen == 2


def test_loss_history_retained_for_full_watch_deadline():
    """Regression: loss pruning must keep at least ``delta`` seconds of
    history, not just ``overheard_window``.

    Drop-suppression consults losses as old as the watch-buffer deadline
    (an expectation created at T is adjudicated at T + delta against
    ``_lost_since(T)``), so when ``delta > overheard_window`` a loss that
    is still evidentially relevant used to be evicted by newer losses.
    """
    config = LiteworpConfig(overheard_window=1.0, delta=5.0)
    sim, monitor, table, detections, _ = build(config)
    monitor.note_reception_loss(0.0)
    # A newer loss used to prune by overheard_window alone (cutoff 1.0),
    # silently discarding the 2-second-old loss still inside delta.
    monitor.note_reception_loss(2.0)
    retained = list(monitor._recent_losses.values())
    assert retained == [0.0, 2.0]
    # Beyond max(overheard_window, delta) the old loss does age out.
    monitor.note_reception_loss(6.0)
    assert list(monitor._recent_losses.values()) == [2.0, 6.0]


def test_loss_history_prunes_by_overheard_window_when_larger():
    config = LiteworpConfig(overheard_window=10.0, delta=0.8)
    sim, monitor, table, detections, _ = build(config)
    monitor.note_reception_loss(0.0)
    monitor.note_reception_loss(5.0)
    assert list(monitor._recent_losses.values()) == [0.0, 5.0]
    monitor.note_reception_loss(11.0)
    assert list(monitor._recent_losses.values()) == [5.0, 11.0]


def test_malc_total_counter_accumulates():
    config = LiteworpConfig(v_fabricate=4)
    sim, monitor, table, detections, _ = build(config)
    monitor.observe(Frame(packet=req(rid=1), transmitter=2, prev_hop=1))
    monitor.observe(Frame(packet=req(rid=2), transmitter=2, prev_hop=1))
    assert monitor.malc_total == 8
