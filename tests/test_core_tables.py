"""Unit tests for neighbor tables and MalC counters."""

import pytest

from repro.core.tables import NeighborTable


def test_add_and_query_neighbors():
    table = NeighborTable(owner=0)
    table.add_neighbor(1)
    table.add_neighbor(2)
    assert set(table.neighbors()) == {1, 2}
    assert table.is_neighbor(1)
    assert not table.is_neighbor(3)


def test_add_self_rejected():
    table = NeighborTable(owner=0)
    with pytest.raises(ValueError):
        table.add_neighbor(0)


def test_add_neighbor_idempotent_preserves_malc():
    table = NeighborTable(owner=0)
    table.add_neighbor(1)
    table.record_malicious(1, 3, now=0.0, window=100.0)
    table.add_neighbor(1)
    assert table.malc(1, now=1.0, window=100.0) == 3


def test_revocation_lifecycle():
    table = NeighborTable(owner=0)
    table.add_neighbor(1)
    assert table.is_active_neighbor(1)
    assert table.revoke(1)
    assert table.is_revoked(1)
    assert not table.is_active_neighbor(1)
    assert table.is_neighbor(1)  # still known, just revoked
    assert not table.revoke(1)  # second revoke reports no change


def test_revoke_unknown_creates_tombstone():
    table = NeighborTable(owner=0)
    assert table.revoke(9)
    assert table.is_revoked(9)


def test_active_neighbors_excludes_revoked():
    table = NeighborTable(owner=0)
    table.add_neighbor(1)
    table.add_neighbor(2)
    table.revoke(1)
    assert table.active_neighbors() == (2,)


def test_malc_accumulates():
    table = NeighborTable(owner=0)
    table.add_neighbor(1)
    assert table.record_malicious(1, 2, now=0.0, window=100.0) == 2
    assert table.record_malicious(1, 1, now=1.0, window=100.0) == 3


def test_malc_window_prunes_old_events():
    table = NeighborTable(owner=0)
    table.add_neighbor(1)
    table.record_malicious(1, 5, now=0.0, window=10.0)
    assert table.malc(1, now=9.0, window=10.0) == 5
    assert table.malc(1, now=11.0, window=10.0) == 0


def test_malc_unknown_node_zero():
    table = NeighborTable(owner=0)
    assert table.malc(42, now=0.0, window=10.0) == 0


def test_second_hop_lists():
    table = NeighborTable(owner=0)
    table.add_neighbor(1)
    table.set_neighbor_list(1, (0, 2, 3))
    assert table.neighbors_of(1) == frozenset({0, 2, 3})
    assert table.knows_second_hop(1)
    assert not table.knows_second_hop(2)


def test_second_hop_neighbors_union():
    table = NeighborTable(owner=0)
    table.add_neighbor(1)
    table.add_neighbor(2)
    table.set_neighbor_list(1, (0, 3, 4))
    table.set_neighbor_list(2, (0, 4, 5))
    # Union minus self and first-hop members.
    assert table.second_hop_neighbors() == frozenset({3, 4, 5})


def test_guards_of_link():
    table = NeighborTable(owner=0)
    table.set_neighbor_list(1, (0, 2, 3))
    table.set_neighbor_list(2, (0, 1, 3))
    guards = table.guards_of_link(1, 2)
    # Common neighbors {0, 3} plus the sender 1, minus the receiver 2.
    assert set(guards) == {0, 1, 3}


def test_guards_of_link_unknown():
    table = NeighborTable(owner=0)
    assert table.guards_of_link(1, 2) == ()


def test_alert_buffer_counts_distinct_guards():
    table = NeighborTable(owner=0)
    assert table.add_alert(accused=5, guard=1) == 1
    assert table.add_alert(accused=5, guard=1) == 1  # duplicate guard
    assert table.add_alert(accused=5, guard=2) == 2
    assert table.alert_count(5) == 2
    assert table.alert_guards(5) == frozenset({1, 2})
    assert table.alert_count(99) == 0


def test_storage_accounting():
    table = NeighborTable(owner=0)
    for neighbor in range(1, 11):
        table.add_neighbor(neighbor)
        table.set_neighbor_list(neighbor, tuple(range(20, 30)))
    # 10 first-hop entries at 5 B + 10 lists of 10 ids at 4 B.
    assert table.storage_bytes() == 10 * 5 + 10 * 10 * 4
    # The paper's claim: under half a kilobyte at N_B = 10.
    assert table.storage_bytes() < 512
