"""Unit tests for the wireless channel: delivery, collisions, capture,
half-duplex, ARQ outcomes, and loss notification."""

import pytest

from repro.net.channel import Channel
from repro.net.packet import DataPacket, Frame
from repro.net.radio import UnitDiskRadio
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog


def build(positions, capture_ratio=0.0, ambient_loss=0.0, bandwidth=40_000.0):
    sim = Simulator()
    radio = UnitDiskRadio(positions, default_range=30.0)
    trace = TraceLog()
    channel = Channel(
        sim, radio, RngRegistry(0), trace=trace,
        bandwidth_bps=bandwidth, ambient_loss=ambient_loss, capture_ratio=capture_ratio,
    )
    inboxes = {node: [] for node in positions}
    for node in positions:
        channel.attach(node, inboxes[node].append)
    return sim, channel, inboxes, trace


def frame(tx, dst=None, size=64):
    return Frame(packet=DataPacket(origin=tx, destination=dst or 0, payload_size=size),
                 transmitter=tx, link_dst=dst)


def test_delivery_to_all_in_range():
    positions = {0: (0, 0), 1: (10, 0), 2: (20, 0), 3: (100, 0)}
    sim, channel, inboxes, _ = build(positions)
    channel.transmit(0, frame(0))
    sim.run()
    assert len(inboxes[1]) == 1
    assert len(inboxes[2]) == 1
    assert len(inboxes[3]) == 0  # out of range
    assert len(inboxes[0]) == 0  # sender does not hear itself


def test_duration_scales_with_size_and_bandwidth():
    positions = {0: (0, 0), 1: (10, 0)}
    sim, channel, _, _ = build(positions)
    short = channel.duration_of(frame(0, size=40))
    long = channel.duration_of(frame(0, size=80))
    assert long > short
    assert short == (40 + 12) * 8 / 40_000.0


def test_overlapping_transmissions_collide():
    # 0 and 2 are hidden from each other (60 m apart), 1 in the middle.
    positions = {0: (0, 0), 1: (30, 0), 2: (60, 0)}
    sim, channel, inboxes, trace = build(positions)
    channel.transmit(0, frame(0))
    channel.transmit(2, frame(2))  # same instant: both collide at node 1
    sim.run()
    assert inboxes[1] == []
    assert channel.collisions >= 2
    assert trace.count("rx_lost", receiver=1) == 2


def test_non_overlapping_transmissions_deliver():
    positions = {0: (0, 0), 1: (30, 0), 2: (60, 0)}
    sim, channel, inboxes, _ = build(positions)
    channel.transmit(0, frame(0))
    sim.run()  # finish first transmission completely
    channel.transmit(2, frame(2))
    sim.run()
    assert len(inboxes[1]) == 2


def test_capture_effect_saves_closer_signal():
    # Node 1 at 5 m from sender 0, interferer 2 at 29 m from node 1.
    positions = {0: (0, 0), 1: (5, 0), 2: (34, 0)}
    sim, channel, inboxes, _ = build(positions, capture_ratio=1.5)
    channel.transmit(0, frame(0))
    channel.transmit(2, frame(2))
    sim.run()
    # 0's signal at 5 m vs interference from 29 m: 5 * 1.5 <= 29 -> captured.
    assert len(inboxes[1]) == 1
    assert inboxes[1][0].transmitter == 0


def test_capture_requires_sufficient_ratio():
    positions = {0: (0, 0), 1: (14, 0), 2: (30, 0)}
    sim, channel, inboxes, _ = build(positions, capture_ratio=1.5)
    channel.transmit(0, frame(0))
    channel.transmit(2, frame(2))
    sim.run()
    # 14 * 1.5 = 21 > 16 (distance 2->1): no capture, both die at node 1.
    assert inboxes[1] == []


def test_half_duplex_receiver_misses_frame():
    positions = {0: (0, 0), 1: (10, 0)}
    sim, channel, inboxes, _ = build(positions)
    channel.transmit(1, frame(1))  # node 1 is busy transmitting
    channel.transmit(0, frame(0))
    sim.run()
    assert inboxes[1] == []


def test_transmitting_kills_own_inflight_receptions():
    positions = {0: (0, 0), 1: (10, 0)}
    sim, channel, inboxes, _ = build(positions)
    channel.transmit(0, frame(0))
    # Node 1 starts transmitting mid-reception.
    sim.schedule(0.001, channel.transmit, 1, frame(1))
    sim.run()
    assert inboxes[1] == []


def test_is_busy_during_transmission_and_reception():
    positions = {0: (0, 0), 1: (10, 0), 2: (100, 0)}
    sim, channel, _, _ = build(positions)
    assert not channel.is_busy(0)
    channel.transmit(0, frame(0))
    assert channel.is_busy(0)  # transmitting
    assert channel.is_busy(1)  # receiving
    assert not channel.is_busy(2)  # far away
    sim.run()
    assert not channel.is_busy(0)
    assert not channel.is_busy(1)


def test_ambient_loss_drops_some_receptions():
    positions = {0: (0, 0), 1: (10, 0)}
    sim, channel, inboxes, _ = build(positions, ambient_loss=0.5)
    for _ in range(100):
        channel.transmit(0, frame(0))
        sim.run()
    assert 20 < len(inboxes[1]) < 80


def test_unicast_outcome_success():
    positions = {0: (0, 0), 1: (10, 0)}
    sim, channel, _, _ = build(positions)
    outcomes = []
    channel.transmit(0, frame(0, dst=1), on_unicast_outcome=outcomes.append)
    sim.run()
    assert outcomes == [True]


def test_unicast_outcome_failure_on_collision():
    positions = {0: (0, 0), 1: (30, 0), 2: (60, 0)}
    sim, channel, _, _ = build(positions)
    outcomes = []
    channel.transmit(0, frame(0, dst=1), on_unicast_outcome=outcomes.append)
    channel.transmit(2, frame(2))
    sim.run()
    assert outcomes == [False]


def test_unicast_outcome_failure_when_out_of_range():
    positions = {0: (0, 0), 1: (100, 0)}
    sim, channel, _, _ = build(positions)
    outcomes = []
    channel.transmit(0, frame(0, dst=1), on_unicast_outcome=outcomes.append)
    sim.run()
    assert outcomes == [False]


def test_loss_handler_notified_on_collision():
    positions = {0: (0, 0), 1: (30, 0), 2: (60, 0)}
    sim, channel, _, _ = build(positions)
    losses = []
    channel.attach_loss_handler(1, losses.append)
    channel.transmit(0, frame(0))
    channel.transmit(2, frame(2))
    sim.run()
    assert len(losses) == 2


def test_loss_handler_not_notified_on_success():
    positions = {0: (0, 0), 1: (10, 0)}
    sim, channel, _, _ = build(positions)
    losses = []
    channel.attach_loss_handler(1, losses.append)
    channel.transmit(0, frame(0))
    sim.run()
    assert losses == []


def test_tx_observer_sees_every_transmission():
    positions = {0: (0, 0), 1: (10, 0)}
    sim, channel, _, _ = build(positions)
    seen = []
    channel.add_tx_observer(lambda sender, fr, t: seen.append((sender, fr.packet.key())))
    f = frame(0)
    channel.transmit(0, f)
    sim.run()
    assert seen == [(0, f.packet.key())]


def test_transmission_counter():
    positions = {0: (0, 0), 1: (10, 0)}
    sim, channel, _, _ = build(positions)
    channel.transmit(0, frame(0))
    sim.run()
    channel.transmit(1, frame(1))
    sim.run()
    assert channel.transmissions == 2


def test_invalid_construction_params():
    positions = {0: (0, 0)}
    radio = UnitDiskRadio(positions, 30.0)
    sim = Simulator()
    with pytest.raises(ValueError):
        Channel(sim, radio, RngRegistry(0), bandwidth_bps=0)
    with pytest.raises(ValueError):
        Channel(sim, radio, RngRegistry(0), ambient_loss=1.0)
    with pytest.raises(ValueError):
        Channel(sim, radio, RngRegistry(0), capture_ratio=-1)
