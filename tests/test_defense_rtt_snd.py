"""Behavioral contract of the two literature-baseline detectors.

The RTT statistical detector (Buch & Jinwala style) and the
secure-neighbor-discovery handshake (Poturalski et al. style) share a
detection scope that these tests pin down:

- **relay / highpower** (physical-layer fake links) are detected — the
  relayed echo pays extra frame air time (RTT) or the response misses
  the time-of-flight window / the far node never answers probes (SND);
- **attack-free runs stay clean** — no flagged links, no unverified
  links, no false alarm;
- **tunnel modes are out of scope by design** — the colluders are real
  proximate neighbors with working radios and valid keys, so both
  detectors verify those links legitimately (docs/DEFENSES.md documents
  the blindness; this test keeps it honest rather than accidental).
"""

from __future__ import annotations

import pytest

from repro.defenses import get_defense
from repro.defenses.rtt import RttConfig
from repro.defenses.snd import SndConfig
from repro.experiments.scenario import ScenarioConfig, run_scenario


def _run(defense, mode, n_malicious, seed=7):
    config = ScenarioConfig(
        n_nodes=24, duration=80.0, seed=seed, attack_mode=mode,
        n_malicious=n_malicious, attack_start=20.0, defense=defense,
    )
    return run_scenario(config)


def _total(report, counter):
    return sum(c.get(counter, 0) for c in report.node_counters.values())


# ----------------------------------------------------------------------
# RTT detector
# ----------------------------------------------------------------------
def test_rtt_clean_network_never_flags():
    report = _run("rtt", "none", 0)
    assert _total(report, "rtt_links_flagged") == 0
    assert _total(report, "rtt_frames_blocked") == 0
    assert not get_defense("rtt").detected(report)
    # Probing actually happened and produced samples.
    assert _total(report, "rtt_probes_sent") > 0
    assert _total(report, "rtt_samples") > 0


def test_rtt_detects_relay_wormhole():
    report = _run("rtt", "relay", 1)
    assert _total(report, "rtt_links_flagged") > 0
    assert _total(report, "rtt_frames_blocked") > 0
    assert get_defense("rtt").detected(report)


def test_rtt_detects_highpower_wormhole():
    report = _run("rtt", "highpower", 1)
    assert _total(report, "rtt_links_flagged") > 0
    assert get_defense("rtt").detected(report)


def test_rtt_tunnel_blindness_is_documented_scope():
    # Out-of-band colluders answer probes with genuine radios at genuine
    # one-hop distance: RTT cannot see the tunnel, by design.
    report = _run("rtt", "outofband", 2)
    assert not get_defense("rtt").detected(report)


def test_rtt_contribution_surface():
    report = _run("rtt", "relay", 1)
    contribution = get_defense("rtt").metrics_contribution(report, RttConfig())
    assert contribution["links_flagged"] > 0
    assert contribution["probes_sent"] > 0


# ----------------------------------------------------------------------
# SND handshake
# ----------------------------------------------------------------------
def test_snd_clean_network_verifies_everything():
    report = _run("snd", "none", 0)
    assert _total(report, "snd_links_unverified") == 0
    assert _total(report, "snd_frames_blocked") == 0
    assert _total(report, "snd_links_verified") > 0
    assert not get_defense("snd").detected(report)


def test_snd_detects_relay_wormhole():
    report = _run("snd", "relay", 1)
    assert _total(report, "snd_links_unverified") > 0
    assert _total(report, "snd_frames_blocked") > 0
    assert get_defense("snd").detected(report)


def test_snd_detects_highpower_wormhole():
    report = _run("snd", "highpower", 1)
    assert _total(report, "snd_links_unverified") > 0
    assert get_defense("snd").detected(report)


def test_snd_tunnel_blindness_is_documented_scope():
    report = _run("snd", "outofband", 2)
    assert not get_defense("snd").detected(report)


def test_snd_detected_uses_counter_evidence_not_guard_detections():
    # SND never emits guard_detection records; its alarm is the
    # unverified-link counter — the plugin verdict must reflect that.
    report = _run("snd", "relay", 1)
    assert report.detections == 0
    assert get_defense("snd").detected(report)


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
def test_rtt_config_validation():
    with pytest.raises(ValueError, match="alpha"):
        RttConfig(alpha=0.0)
    with pytest.raises(ValueError, match="min_samples cannot exceed"):
        RttConfig(min_samples=10, sample_window=4)
    with pytest.raises(ValueError, match="round_jitter"):
        RttConfig(round_jitter=-1.0)


def test_snd_config_validation():
    with pytest.raises(ValueError, match="rounds"):
        SndConfig(rounds=0)
    with pytest.raises(ValueError, match="answer_timeout"):
        SndConfig(answer_timeout=0.005, response_window=0.020)


def test_snd_activation_follows_schedule():
    config = SndConfig(start_time=1.0, rounds=4, round_interval=4.0, grace=1.0)
    assert config.activate_time == pytest.approx(18.0)
