"""Tests for journal/cache auditing and repair (`repro campaign doctor`)."""

import json

import pytest

from repro.experiments.cache import CACHE_SCHEMA_VERSION, ResultCache
from repro.experiments.campaign import (
    CampaignError,
    CampaignRunner,
    CampaignSpec,
    load_journal,
)
from repro.experiments.doctor import (
    audit_cache,
    audit_journal,
    repair_cache,
    repair_journal,
)
from repro.experiments.scenario import ScenarioConfig
from repro.metrics.collector import MetricsReport


def tiny_spec(name="doctored", runs=1):
    base = ScenarioConfig(n_nodes=16, duration=30.0, seed=4, attack_start=10.0)
    return CampaignSpec(
        name=name, base=base, axes=(("n_malicious", (0, 2)),), runs=runs
    )


class _FakeWorker:
    def __call__(self, config):
        return MetricsReport(
            duration=config.duration,
            originated=10,
            delivered=8,
            wormhole_drops=config.n_malicious,
            routes_established=9,
            malicious_routes=config.n_malicious,
            drop_times=(1.0,),
            isolation_times={},
            first_activity={},
            detections=0,
            isolations=0,
        )


def _healthy_journal(tmp_path, name="ok.jsonl"):
    journal = tmp_path / name
    result = CampaignRunner(
        tiny_spec(), worker=_FakeWorker(), journal_path=journal
    ).run()
    assert result.complete
    return journal


# ----------------------------------------------------------------------
# Audit
# ----------------------------------------------------------------------
def test_audit_healthy_journal(tmp_path):
    journal = _healthy_journal(tmp_path)
    audit = audit_journal(journal)
    assert audit.healthy
    assert audit.begins == 1
    assert audit.completes == 2
    assert "healthy" in audit.format()


def test_audit_flags_torn_tail_with_location(tmp_path):
    journal = _healthy_journal(tmp_path)
    data = journal.read_bytes()
    journal.write_bytes(data + b'{"event":"complete","dig')
    audit = audit_journal(journal)
    (problem,) = audit.problems
    assert problem.kind == "torn_tail"
    assert problem.offset == len(data)
    assert problem.lineno == 4  # begin + 2 completes + fragment


def test_audit_flags_midfile_corruption(tmp_path):
    journal = _healthy_journal(tmp_path)
    lines = journal.read_bytes().splitlines(keepends=True)
    lines[1] = b'{"event":"complete","digest": \xff garbage}\n'
    journal.write_bytes(b"".join(lines))
    audit = audit_journal(journal)
    (problem,) = audit.problems
    assert problem.kind == "corrupt"
    assert problem.lineno == 2


def test_audit_flags_version_skew_unknown_event_and_malformed(tmp_path):
    journal = tmp_path / "mixed.jsonl"
    journal.write_text(
        json.dumps({"event": "begin", "version": 99, "spec": "a" * 64,
                    "jobs": 1}) + "\n"
        + json.dumps({"event": "mystery"}) + "\n"
        + json.dumps({"event": "complete", "digest": 7,
                      "report": {"nope": 1}}) + "\n"
    )
    audit = audit_journal(journal)
    kinds = sorted(problem.kind for problem in audit.problems)
    assert kinds == ["bad_version", "malformed_entry", "unknown_event"]


def test_audit_flags_spec_mix(tmp_path):
    journal = _healthy_journal(tmp_path)
    with open(journal, "a", encoding="utf-8") as handle:
        handle.write(json.dumps({
            "event": "begin", "version": 1, "campaign": "other",
            "spec": "f" * 64, "jobs": 3,
        }) + "\n")
    audit = audit_journal(journal)
    (problem,) = audit.problems
    assert problem.kind == "spec_mix"
    assert len(audit.spec_digests) == 2


# ----------------------------------------------------------------------
# Repair
# ----------------------------------------------------------------------
def test_repair_healthy_journal_is_a_noop(tmp_path):
    journal = _healthy_journal(tmp_path)
    before = journal.read_bytes()
    result = repair_journal(journal)
    assert not result.repaired
    assert journal.read_bytes() == before


def test_repair_quarantines_damage_and_keeps_good_lines_bytewise(tmp_path):
    journal = _healthy_journal(tmp_path)
    good = journal.read_bytes()
    corrupt_line = b'not json at all\n'
    torn_tail = b'{"event":"complete","dig'
    lines = good.splitlines(keepends=True)
    damaged = lines[0] + corrupt_line + b"".join(lines[1:]) + torn_tail
    journal.write_bytes(damaged)

    with pytest.raises(CampaignError, match="doctor"):
        load_journal(journal)  # mid-file damage is fatal without repair

    result = repair_journal(journal)
    assert result.repaired
    assert result.kept == len(lines)
    assert result.quarantined == 2
    # Healthy lines survive byte-for-byte; resume state is intact.
    assert journal.read_bytes() == good
    state = load_journal(journal)
    assert len(state.reports) == 2
    # Nothing was destroyed: the damage moved to the quarantine file.
    quarantined = result.quarantine_path.read_bytes()
    assert corrupt_line in quarantined
    assert torn_tail in quarantined


def test_repair_error_message_names_doctor(tmp_path):
    journal = _healthy_journal(tmp_path)
    lines = journal.read_bytes().splitlines(keepends=True)
    journal.write_bytes(lines[0] + b"garbage\n" + b"".join(lines[1:]))
    with pytest.raises(CampaignError) as excinfo:
        load_journal(journal)
    message = str(excinfo.value)
    assert ":2:" in message  # line number
    assert "byte offset" in message
    assert "repro campaign doctor" in message


def test_repair_with_spec_filter_drops_foreign_lines(tmp_path):
    spec_a, spec_b = tiny_spec("alpha"), tiny_spec("beta")
    journal = tmp_path / "shared.jsonl"
    for spec in (spec_a, spec_b):
        result = CampaignRunner(
            spec, worker=_FakeWorker(), journal_path=journal
        ).run()
        assert result.executed == 2

    audit = audit_journal(journal)
    assert any(problem.kind == "spec_mix" for problem in audit.problems)
    result = repair_journal(journal, spec_digest=spec_a.digest())
    assert result.repaired
    assert result.dropped_foreign >= 2
    state = load_journal(journal)
    assert state.spec_digest == spec_a.digest()

    # The filtered journal resumes campaign A without re-running anything.
    resumed = CampaignRunner(
        spec_a, worker=_FakeWorker(), journal_path=journal, resume=True
    ).run()
    assert resumed.complete
    assert resumed.executed == 0
    assert resumed.from_journal == 2


# ----------------------------------------------------------------------
# Cache audit/repair
# ----------------------------------------------------------------------
def test_cache_audit_and_repair(tmp_path):
    cache = ResultCache(tmp_path / "cache", salt="s" * 64)
    config = ScenarioConfig(n_nodes=16, duration=30.0, seed=4, attack_start=10.0)
    path = cache.put(config, _FakeWorker()(config))
    assert audit_cache(cache.root) == []

    torn = path.with_name("torn.json")
    torn.write_text('{"schema": %d, "rep' % CACHE_SCHEMA_VERSION)
    skewed = path.with_name("skewed.json")
    skewed.write_text(json.dumps({"schema": 1, "report": {}}))
    malformed = path.with_name("malformed.json")
    malformed.write_text(json.dumps({"schema": CACHE_SCHEMA_VERSION,
                                     "report": {"bogus": True}}))

    problems = audit_cache(cache.root)
    kinds = sorted(problem.kind for problem in problems)
    assert kinds == ["bad_version", "corrupt", "malformed_entry"]

    repaired = repair_cache(cache.root)
    assert len(repaired) == 3
    assert audit_cache(cache.root) == []
    # The good entry still serves; damage is parked, not deleted.
    assert cache.get(config) is not None
    assert torn.with_name(torn.name + ".quarantine").exists()


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_doctor_exit_codes(tmp_path, capsys):
    from repro.cli import main

    journal = _healthy_journal(tmp_path)
    assert main(["campaign", "doctor", str(journal)]) == 0
    capsys.readouterr()

    journal.write_bytes(journal.read_bytes() + b'{"torn')
    assert main(["campaign", "doctor", str(journal)]) == 2
    out = capsys.readouterr().out
    assert "torn_tail" in out

    assert main(["campaign", "doctor", str(journal), "--repair"]) == 0
    out = capsys.readouterr().out
    assert "repaired" in out
    assert main(["campaign", "doctor", str(journal)]) == 0
