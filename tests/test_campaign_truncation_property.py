"""Property tests: a campaign journal truncated at *any* byte offset
either resumes to byte-identical aggregates or fails with a clean,
located diagnostic — never a silent wrong aggregate."""

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.campaign import (
    CampaignError,
    CampaignRunner,
    CampaignSpec,
    load_journal,
)
from repro.experiments.doctor import repair_journal
from repro.experiments.scenario import ScenarioConfig
from repro.metrics.collector import MetricsReport

SPEC = CampaignSpec(
    name="truncation-property",
    base=ScenarioConfig(n_nodes=16, duration=30.0, seed=4, attack_start=10.0),
    axes=(("n_malicious", (0, 2)),),
    runs=2,
)


class _FakeWorker:
    """Instant deterministic worker so each hypothesis example is cheap."""

    def __call__(self, config):
        return MetricsReport(
            duration=config.duration,
            originated=10 + config.seed % 7,
            delivered=8,
            wormhole_drops=config.n_malicious,
            routes_established=9,
            malicious_routes=config.n_malicious,
            drop_times=(1.0,),
            isolation_times={},
            first_activity={},
            detections=config.n_malicious,
            isolations=0,
        )


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """One fault-free journal + its aggregate, shared by every example."""
    root = tmp_path_factory.mktemp("truncation")
    journal = root / "full.jsonl"
    result = CampaignRunner(
        SPEC, worker=_FakeWorker(), journal_path=journal, fsync=False
    ).run()
    assert result.complete
    return journal.read_bytes(), json.dumps(result.aggregate, sort_keys=True)


@settings(
    deadline=None,
    max_examples=80,
    derandomize=True,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_truncation_at_any_offset_resumes_byte_identical(baseline, data):
    raw, reference = baseline
    offset = data.draw(st.integers(min_value=0, max_value=len(raw)))
    with tempfile.TemporaryDirectory() as workdir:
        path = Path(workdir) / "truncated.jsonl"
        path.write_bytes(raw[:offset])
        # A pure prefix damages at most the final line, which
        # tolerate_partial handles — loading never raises, and every
        # report it does return is one the full journal contains.
        state = load_journal(path, tolerate_partial=True)
        assert state.partial_lines <= 1
        full = load_journal_reports(raw, workdir)
        for digest, report in state.reports.items():
            assert report == full[digest]
        # Resume from the prefix completes and lands byte-identically
        # on the fault-free aggregate.
        resumed = CampaignRunner(
            SPEC,
            worker=_FakeWorker(),
            journal_path=path,
            resume=True,
            fsync=False,
        ).run()
        assert resumed.complete
        assert json.dumps(resumed.aggregate, sort_keys=True) == reference


def load_journal_reports(raw, workdir):
    path = Path(workdir) / "full-reference.jsonl"
    path.write_bytes(raw)
    return load_journal(path).reports


@settings(
    deadline=None,
    max_examples=40,
    derandomize=True,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_midfile_garbage_fails_located_then_repairs(baseline, data):
    raw, reference = baseline
    lines = raw.splitlines(keepends=True)
    # Inject a non-JSON line anywhere strictly before the final line, so
    # it is never mistakable for an interrupted final append.
    where = data.draw(st.integers(min_value=0, max_value=len(lines) - 2))
    garbage = data.draw(
        st.binary(min_size=1, max_size=40).filter(
            lambda b: b.strip()
            and b"\n" not in b
            and b"\r" not in b
            and not _is_json(b)
        )
    )
    with tempfile.TemporaryDirectory() as workdir:
        path = Path(workdir) / "corrupt.jsonl"
        path.write_bytes(
            b"".join(lines[: where + 1]) + garbage + b"\n"
            + b"".join(lines[where + 1 :])
        )
        # Never a silent wrong aggregate: the load fails, and the
        # diagnostic carries the line, the byte offset, and the cure.
        with pytest.raises(CampaignError) as excinfo:
            load_journal(path, tolerate_partial=True)
        message = str(excinfo.value)
        assert f":{where + 2}:" in message
        assert "byte offset" in message
        assert "repro campaign doctor" in message
        # The cure works: repair quarantines the garbage, resume matches.
        result = repair_journal(path)
        assert result.repaired and result.quarantined == 1
        resumed = CampaignRunner(
            SPEC,
            worker=_FakeWorker(),
            journal_path=path,
            resume=True,
            fsync=False,
        ).run()
        assert resumed.complete
        assert json.dumps(resumed.aggregate, sort_keys=True) == reference


def _is_json(blob):
    try:
        json.loads(blob.decode("utf-8", errors="strict"))
        return True
    except (ValueError, UnicodeDecodeError):
        return False
