"""Unit tests for the energy model."""

import pytest

from repro.net.energy import EnergyConfig, EnergyMeter
from repro.net.packet import DataPacket
from repro.net.topology import grid_topology
from tests.conftest import Harness


def build(n=3, config=None):
    harness = Harness(grid_topology(columns=n, rows=1, spacing=25.0, tx_range=30.0))
    meter = EnergyMeter(harness.network.channel, harness.network.radio, config)
    return harness, meter


def test_transmission_charges_sender():
    harness, meter = build()
    harness.node(0).broadcast(DataPacket(origin=0, destination=1), jitter=0.0)
    harness.run(1.0)
    assert meter.tx_joules.get(0, 0.0) > 0
    assert meter.tx_joules.get(1, 0.0) == 0


def test_reception_charges_all_hearers():
    harness, meter = build()
    harness.node(1).broadcast(DataPacket(origin=1, destination=0), jitter=0.0)
    harness.run(1.0)
    # Both neighbors of node 1 paid to listen.
    assert meter.rx_joules.get(0, 0.0) > 0
    assert meter.rx_joules.get(2, 0.0) > 0


def test_tx_energy_grows_with_range():
    config = EnergyConfig()
    assert config.tx_energy(1000, 60.0) > config.tx_energy(1000, 30.0)


def test_tx_energy_formula():
    config = EnergyConfig(electronics_j_per_bit=1e-9, amplifier_j_per_bit_m2=1e-12)
    assert config.tx_energy(8, 10.0) == pytest.approx(8 * (1e-9 + 1e-12 * 100.0))


def test_rx_energy_independent_of_range():
    config = EnergyConfig()
    assert config.rx_energy(800) == 800 * config.electronics_j_per_bit


def test_overhearing_costs_same_as_reception():
    """Unicasts charge every in-range node, not just the destination —
    the true cost of promiscuous monitoring."""
    harness, meter = build()
    harness.node(1).unicast(DataPacket(origin=1, destination=0), next_hop=0, jitter=0.0)
    harness.run(1.0)
    assert meter.rx_joules.get(2, 0.0) == pytest.approx(meter.rx_joules.get(0, 0.0))


def test_collided_receptions_still_cost_energy():
    harness, meter = build()
    # Nodes 0 and 2 are hidden from each other; both transmit at node 1.
    harness.network.channel.transmit(
        0, __frame(0)
    )
    harness.network.channel.transmit(2, __frame(2))
    harness.run(1.0)
    assert meter.rx_joules.get(1, 0.0) > 0


def __frame(tx):
    from repro.net.packet import Frame
    return Frame(packet=DataPacket(origin=tx, destination=9), transmitter=tx)


def test_totals_and_breakdown():
    harness, meter = build()
    harness.node(0).broadcast(DataPacket(origin=0, destination=1), jitter=0.0)
    harness.run(1.0)
    breakdown = meter.breakdown()
    assert breakdown["total"] == pytest.approx(breakdown["tx"] + breakdown["rx"])
    assert meter.total() == pytest.approx(breakdown["total"])
    assert meter.consumed(0) == pytest.approx(meter.tx_joules[0])


def test_idle_energy():
    config = EnergyConfig(idle_w=0.001)
    harness, meter = build(config=config)
    harness.run(10.0)
    assert meter.total_with_idle(10.0, 3) == pytest.approx(0.001 * 10.0 * 3)
    with pytest.raises(ValueError):
        meter.total_with_idle(-1.0, 3)


def test_invalid_config():
    with pytest.raises(ValueError):
        EnergyConfig(electronics_j_per_bit=-1)
    with pytest.raises(ValueError):
        EnergyConfig(idle_w=-1)
