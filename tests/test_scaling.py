"""Scaling regressions: coverage queries must stay O(neighbors), not O(n).

The 1000-node campaigns only work because a broadcast touches the nodes
in the sender's grid neighborhood instead of the whole field.  These
tests pin that property with the radio's ``distance_computations``
counting hook: if someone reintroduces a full scan on the hot path, the
counter explodes from ~tens to ~n and the assertions here fail long
before anyone notices a wall-clock regression.
"""

import random

from repro.net.channel import Channel
from repro.net.packet import DataPacket, Frame
from repro.net.radio import UnitDiskRadio
from repro.sim.engine import make_simulator
from repro.sim.rng import RngRegistry
from repro.net.topology import field_side_for_density

N_NODES = 1000
RANGE = 30.0


def _positions(seed: int = 4):
    rng = random.Random(seed)
    side = field_side_for_density(N_NODES, RANGE, avg_neighbors=12.0)
    return {i: (rng.uniform(0.0, side), rng.uniform(0.0, side)) for i in range(N_NODES)}


def test_coverage_query_is_o_neighbors_at_n1000():
    positions = _positions()
    radio = UnitDiskRadio(positions, default_range=RANGE, use_grid=True)
    assert radio.uses_grid_index
    radio.distance_computations = 0
    covered = radio.coverage_with_distance(17)
    # A disk of radius r in a cell grid of size r examines at most the
    # 3x3 cell ring around the sender: ~9 cells * ~(12/pi) nodes/cell.
    # Give it 6x headroom over the expected neighbor count; an O(n)
    # scan would cost ~999 and fail loudly.
    assert 0 < radio.distance_computations <= 12 * 6
    assert len(covered) >= 1
    # The brute-force reference really does pay O(n) — the counter works.
    brute = UnitDiskRadio(positions, default_range=RANGE, use_grid=False)
    brute.distance_computations = 0
    assert brute._brute_coverage_with_distance(17, RANGE) == covered
    assert brute.distance_computations == N_NODES - 1


def test_broadcast_at_n1000_is_o_neighbors():
    positions = _positions()
    sim = make_simulator()
    radio = UnitDiskRadio(positions, default_range=RANGE, use_grid=True)
    channel = Channel(sim, radio, RngRegistry(0))
    delivered = [0]
    for node in positions:
        channel.attach(node, lambda _frame: delivered[0] + 1)
    radio.distance_computations = 0
    packet = DataPacket(origin=17, destination=18, payload_size=64)
    channel.transmit(17, Frame(packet=packet, transmitter=17))
    sim.run()
    assert 0 < radio.distance_computations <= 12 * 6
    # Repeat broadcasts hit the coverage memo: zero further distance work.
    radio.distance_computations = 0
    channel.transmit(17, Frame(packet=packet, transmitter=17))
    sim.run()
    assert radio.distance_computations == 0


def test_audible_from_uses_one_disk_query():
    positions = _positions()
    radio = UnitDiskRadio(positions, default_range=RANGE, use_grid=True)
    senders = list(range(0, N_NODES, 7))
    radio.distance_computations = 0
    audible = radio.audible_from(17, senders)
    # One disk query around the receiver, not one distance per sender.
    assert radio.distance_computations <= 12 * 6
    brute = UnitDiskRadio(positions, default_range=RANGE, use_grid=False)
    assert audible == brute._brute_audible_from(17, senders)


def test_mobility_keeps_grid_queries_correct_and_cheap():
    positions = _positions()
    radio = UnitDiskRadio(positions, default_range=RANGE, use_grid=True)
    brute = UnitDiskRadio(positions, default_range=RANGE, use_grid=False)
    rng = random.Random(9)
    side = field_side_for_density(N_NODES, RANGE, avg_neighbors=12.0)
    for _ in range(25):
        node = rng.randrange(N_NODES)
        pos = (rng.uniform(0.0, side), rng.uniform(0.0, side))
        radio.set_position(node, pos)
        brute.set_position(node, pos)
        radio.distance_computations = 0
        assert radio.coverage_with_distance(node) == brute._brute_coverage_with_distance(
            node, RANGE
        )
        assert radio.distance_computations <= 12 * 6
