"""Protocol tests for on-demand routing over the simulated channel."""

import pytest

from repro.net.topology import grid_topology
from repro.routing.config import RoutingConfig
from repro.routing.ondemand import OnDemandRouting
from tests.conftest import Harness


def build_line(n=5, metric="shortest", **routing_kwargs):
    harness = Harness(grid_topology(columns=n, rows=1, spacing=25.0, tx_range=30.0))
    config = RoutingConfig(metric=metric, **routing_kwargs)
    routers = {
        node_id: OnDemandRouting(
            harness.sim,
            harness.node(node_id),
            config,
            harness.trace,
            harness.rng.stream(f"routing:{node_id}"),
        )
        for node_id in harness.topology.node_ids
    }
    return harness, routers


def test_discovery_establishes_route():
    harness, routers = build_line()
    routers[0].send_data(4)
    harness.run(10.0)
    record = harness.trace.first("route_established", origin=0, target=4)
    assert record is not None
    assert record["hop_count"] == 4
    assert routers[0].has_route(4)


def test_data_delivered_end_to_end():
    harness, routers = build_line()
    routers[0].send_data(4)
    harness.run(10.0)
    assert harness.trace.count("data_delivered", destination=4) == 1


def test_queued_data_flushed_after_discovery():
    harness, routers = build_line()
    for _ in range(3):
        routers[0].send_data(4)
    harness.run(10.0)
    assert harness.trace.count("data_delivered", destination=4) == 3
    # Only one discovery was needed.
    assert harness.trace.count("route_request_sent", origin=0) == 1


def test_cached_route_reused_without_new_discovery():
    harness, routers = build_line()
    routers[0].send_data(4)
    harness.run(10.0)
    requests_before = harness.trace.count("route_request_sent", origin=0)
    routers[0].send_data(4)
    harness.run(20.0)
    assert harness.trace.count("route_request_sent", origin=0) == requests_before
    assert harness.trace.count("data_delivered", destination=4) == 2


def test_route_expires_after_timeout():
    harness, routers = build_line(route_timeout=30.0)
    routers[0].send_data(4)
    harness.run(10.0)
    assert routers[0].has_route(4)
    harness.run(45.0)
    assert not routers[0].has_route(4)
    # A new data packet triggers a fresh discovery.
    routers[0].send_data(4)
    harness.run(55.0)
    assert harness.trace.count("route_request_sent", origin=0) == 2


def test_intermediate_nodes_install_forward_routes():
    harness, routers = build_line()
    routers[0].send_data(4)
    harness.run(10.0)
    for intermediate in (1, 2, 3):
        assert routers[intermediate].has_route(4)


def test_discovery_to_unreachable_node_fails_gracefully():
    harness = Harness(grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0))
    # Add an isolated node far away.
    harness.topology.positions[99] = (10_000.0, 10_000.0)
    config = RoutingConfig(request_timeout=1.0, max_retries=2)
    routers = {
        node_id: OnDemandRouting(
            harness.sim, harness.node(node_id), config, harness.trace,
            harness.rng.stream(f"routing:{node_id}"),
        )
        for node_id in (0, 1, 2)
    }
    routers[0].send_data(99)
    harness.run(30.0)
    assert harness.trace.count("data_discovery_failed", reason="no_route") == 1
    assert harness.trace.count("route_request_sent", origin=0) == 2  # retried


def test_queue_capacity_drops_oldest():
    harness = Harness(grid_topology(columns=2, rows=1, spacing=1000.0, tx_range=30.0))
    config = RoutingConfig(queue_capacity=2, request_timeout=60.0)
    router = OnDemandRouting(
        harness.sim, harness.node(0), config, harness.trace, harness.rng.stream("r")
    )
    for _ in range(4):
        router.send_data(1)
    assert harness.trace.count("data_discovery_failed", reason="queue_full") == 2


def test_duplicate_requests_not_reforwarded():
    harness, routers = build_line(n=4)
    routers[0].send_data(3)
    harness.run(10.0)
    # Each intermediate node forwarded the request at most once.
    reqs_by_1 = [
        rec for rec in harness.trace.of_kind("rx_lost")
    ]  # sanity placeholder: check via seen set instead
    assert ("REQ", 0, 1) in routers[1]._seen_requests  # noqa: SLF001 - protocol state
    # Sending again within cache lifetime creates no further discovery.
    assert harness.trace.count("route_request_sent", origin=0) == 1


def test_send_data_to_self_rejected():
    harness, routers = build_line(n=2)
    with pytest.raises(ValueError):
        routers[0].send_data(0)


def test_shortest_metric_prefers_fewer_hops():
    """Destination with two request copies replies to the lower hop count."""
    harness, routers = build_line(n=5, metric="shortest", reply_window=0.5)
    routers[0].send_data(4)
    harness.run(10.0)
    record = harness.trace.first("route_established", origin=0)
    assert record is not None
    assert record["hop_count"] == 4  # the line has a unique 4-hop path


def test_first_metric_replies_immediately():
    harness, routers = build_line(n=3, metric="first")
    routers[0].send_data(2)
    harness.run(5.0)
    assert harness.trace.first("route_established", origin=0) is not None


def test_usable_hook_blocks_next_hop_at_intermediate():
    harness, routers = build_line(n=3)
    routers[0].send_data(2)
    harness.run(10.0)
    assert harness.trace.count("data_delivered", destination=2) == 1
    # Node 1 (the only intermediate) now refuses to use node 2.
    routers[1].usable = lambda n: n != 2
    routers[0].send_data(2)
    harness.run(20.0)
    assert harness.trace.count("data_delivered", destination=2) == 1  # unchanged
    assert harness.trace.count("data_blocked", node=1) == 1


def test_usable_hook_triggers_rediscovery_at_origin():
    harness, routers = build_line(n=3)
    routers[0].send_data(2)
    harness.run(10.0)
    requests_before = harness.trace.count("route_request_sent", origin=0)
    # The origin refuses its cached next hop: it must re-discover.
    routers[0].usable = lambda n: n != 1
    routers[0].send_data(2)
    harness.run(20.0)
    assert harness.trace.count("route_request_sent", origin=0) > requests_before


def test_suppression_reduces_rebroadcasts():
    dense = Harness(grid_topology(columns=4, rows=4, spacing=10.0, tx_range=30.0))
    results = {}
    for threshold in (0, 1):
        harness = Harness(grid_topology(columns=4, rows=4, spacing=10.0, tx_range=30.0))
        config = RoutingConfig(suppression_threshold=threshold)
        routers = {
            node_id: OnDemandRouting(
                harness.sim, harness.node(node_id), config, harness.trace,
                harness.rng.stream(f"routing:{node_id}"),
            )
            for node_id in harness.topology.node_ids
        }
        routers[0].send_data(15)
        harness.run(10.0)
        results[threshold] = harness.network.channel.transmissions
    assert results[1] < results[0]


def test_route_error_broadcast_when_reply_stranded():
    harness, routers = build_line(n=3)
    routers[0].send_data(2)
    harness.run(10.0)
    # Simulate: node 1 receives a reply for an unknown discovery.
    from repro.net.packet import Frame, RouteReply
    ghost = RouteReply(origin=0, request_id=77, target=2, hop_count=1, path=(0, 2))
    routers[1]._on_reply(Frame(packet=ghost, transmitter=2, link_dst=1), ghost)  # noqa: SLF001
    harness.run(12.0)
    assert harness.trace.count("rep_stranded", node=1) == 1
