"""Shape tests for the figure regenerators (scaled-down sweeps).

These use small networks and short horizons; the benchmark suite runs the
paper-scale versions.  What must hold here are the *shapes* the paper
reports, not absolute numbers.
"""

import pytest

from repro.experiments.figures import run_fig8, run_fig9, run_fig10
from repro.experiments.scenario import ScenarioConfig


SMALL = ScenarioConfig(n_nodes=30, duration=150.0, seed=5, attack_start=30.0)


@pytest.fixture(scope="module")
def fig8():
    return run_fig8(base=SMALL, malicious_counts=(2,), runs=1, sample_interval=25.0)


def test_fig8_baseline_grows_steadily(fig8):
    series = fig8.series[(2, False)]
    assert series[-1] > 10
    # Cumulative counts are non-decreasing.
    assert all(b >= a for a, b in zip(series, series[1:]))


def test_fig8_liteworp_plateaus(fig8):
    protected = fig8.series[(2, True)]
    baseline = fig8.series[(2, False)]
    assert protected[-1] < baseline[-1] / 3
    # After isolation + route timeout, the protected curve goes flat:
    # the second half of the run adds (almost) nothing.
    mid = len(protected) // 2
    assert protected[-1] - protected[mid] <= max(2.0, 0.2 * protected[-1])


def test_fig8_format_renders(fig8):
    text = fig8.format()
    assert "time" in text
    assert len(text.splitlines()) == len(fig8.times) + 1


def test_fig9_fractions_shape():
    result = run_fig9(base=SMALL, malicious_counts=(0, 2), runs=1)
    rows = {m: row for m, *row in [(r[0], r[1:]) for r in result.rows()]}
    drop_base_0, malrt_base_0, drop_lw_0, malrt_lw_0 = rows[0][0]
    drop_base_2, malrt_base_2, drop_lw_2, malrt_lw_2 = rows[2][0]
    # No compromised nodes: nothing malicious anywhere.
    assert drop_base_0 == 0.0 and malrt_base_0 == 0.0
    # Two colluders, baseline: noticeable damage.
    assert drop_base_2 > 0.01
    assert malrt_base_2 > 0.05
    # LITEWORP: restored to near-zero.
    assert drop_lw_2 < drop_base_2 / 2
    assert malrt_lw_2 < malrt_base_2


def test_fig9_single_malicious_is_harmless_for_tunnel_modes():
    result = run_fig9(base=SMALL, malicious_counts=(1,), runs=1)
    row = result.rows()[0]
    assert row[0] == 1
    assert row[1] == 0.0  # baseline fraction dropped
    assert row[2] == 0.0  # baseline malicious routes


def test_fig10_detection_and_latency():
    result = run_fig10(
        base=ScenarioConfig(n_nodes=40, avg_neighbors=12.0, duration=150.0,
                            seed=5, attack_start=30.0),
        thetas=(2, 6),
        runs=1,
    )
    rows = result.rows()
    assert len(rows) == 2
    # Analytical detection decreases with theta.
    assert result.analytical_detection[2] >= result.analytical_detection[6]
    # Simulated detection at the easy setting is positive.
    assert result.sim_detection[2] > 0.0
    text = result.format()
    assert "theta" in text
