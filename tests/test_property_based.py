"""Property-based tests (hypothesis) on core data structures and invariants."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.coverage import (
    guard_region_area,
    per_guard_alert_probability,
    theta_of_g,
)
from repro.core.tables import NeighborTable
from repro.crypto.auth import Authenticator
from repro.crypto.keys import PairwiseKeyManager
from repro.crypto.replay import ReplayCache
from repro.routing.cache import RouteTable
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.net.topology import uniform_topology


# ----------------------------------------------------------------------
# Simulator: events always fire in non-decreasing time order
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_simulator_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# ----------------------------------------------------------------------
# Geometry: the lens area is positive, bounded, and monotone in x
# ----------------------------------------------------------------------
@given(
    st.floats(min_value=0.01, max_value=1000.0),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_lens_area_bounds(r, fraction):
    x = fraction * 2 * r
    area = guard_region_area(x, r)
    assert -1e-9 <= area <= math.pi * r * r + 1e-9


@given(
    st.floats(min_value=1.0, max_value=100.0),
    st.floats(min_value=0.0, max_value=0.99),
    st.floats(min_value=0.001, max_value=0.5),
)
def test_lens_area_monotone_decreasing(r, fraction, step):
    x1 = fraction * 2 * r
    x2 = min(2 * r, x1 + step * r)
    assert guard_region_area(x1, r) >= guard_region_area(x2, r) - 1e-9


# ----------------------------------------------------------------------
# Probability helpers stay in [0, 1] and are monotone where claimed
# ----------------------------------------------------------------------
@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=1, max_value=30),
)
def test_alert_probability_is_probability(p_c, gamma, kappa_raw):
    kappa = min(kappa_raw, gamma)
    p = per_guard_alert_probability(p_c, gamma, kappa)
    assert 0.0 <= p <= 1.0


@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=0, max_value=30),
)
def test_theta_of_g_is_probability_and_monotone_in_guards(p, theta, guards):
    value = theta_of_g(p, theta, guards)
    more = theta_of_g(p, theta, guards + 1)
    assert 0.0 <= value <= 1.0
    assert more >= value - 1e-12


# ----------------------------------------------------------------------
# MalC sliding window: total equals the sum of in-window values
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1000.0),
            st.integers(min_value=1, max_value=5),
        ),
        max_size=40,
    ),
    st.floats(min_value=1.0, max_value=500.0),
)
def test_malc_window_invariant(events, window):
    table = NeighborTable(owner=0)
    table.add_neighbor(1)
    events = sorted(events)
    for when, value in events:
        table.record_malicious(1, value, now=when, window=window)
    now = events[-1][0] if events else 0.0
    expected = sum(v for t, v in events if t >= now - window)
    assert table.malc(1, now=now, window=window) == expected


# ----------------------------------------------------------------------
# Replay cache: an identity is flagged iff seen within the window
# ----------------------------------------------------------------------
@given(
    st.lists(st.tuples(st.integers(0, 5), st.floats(0.0, 100.0)), max_size=40),
)
def test_replay_cache_flags_only_repeats(events):
    cache = ReplayCache()
    seen = set()
    for identity, when in sorted(events, key=lambda e: e[1]):
        flagged = cache.seen_before(identity, now=when)
        assert flagged == (identity in seen)
        seen.add(identity)


# ----------------------------------------------------------------------
# Route table: lookups never return stale entries
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.integers(0, 5),     # destination
            st.integers(10, 15),   # next hop
            st.floats(0.0, 100.0), # install time
        ),
        max_size=30,
    ),
    st.floats(min_value=0.1, max_value=60.0),
    st.floats(min_value=0.0, max_value=200.0),
)
def test_route_table_freshness(installs, timeout, query_time):
    table = RouteTable(timeout=timeout)
    installs = sorted(installs, key=lambda i: i[2])
    latest = {}
    for destination, next_hop, when in installs:
        table.install(destination, next_hop, now=when)
        latest[destination] = when
    query = max(query_time, installs[-1][2] if installs else 0.0)
    for destination, when in latest.items():
        entry = table.lookup(destination, now=query)
        if query < when + timeout:
            assert entry is not None
        else:
            assert entry is None


# ----------------------------------------------------------------------
# Crypto: verification accepts the real payload and rejects perturbations
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=1000),
    st.text(max_size=30),
)
def test_auth_roundtrip_and_tamper(a, b, text):
    mgr = PairwiseKeyManager(b"prop-master")
    key = mgr.pairwise_key(1, 2)
    tag = Authenticator.tag(key, a, b, text)
    assert Authenticator.verify(key, tag, a, b, text)
    assert not Authenticator.verify(key, tag, a + 1, b, text)
    assert not Authenticator.verify(key, tag, a, b, text + "x")


@given(st.integers(0, 500), st.integers(0, 500), st.integers(0, 500))
def test_pairwise_keys_symmetric_and_distinct(a, b, c):
    mgr = PairwiseKeyManager(b"prop-master")
    if a != b:
        assert mgr.pairwise_key(a, b) == mgr.pairwise_key(b, a)
    if a != b and a != c and b != c:
        assert mgr.pairwise_key(a, b) != mgr.pairwise_key(a, c)


# ----------------------------------------------------------------------
# RNG registry: deterministic per (seed, name), independent across names
# ----------------------------------------------------------------------
@given(st.integers(0, 2**31), st.text(min_size=1, max_size=20))
def test_rng_registry_deterministic(seed, name):
    a = RngRegistry(seed=seed).stream(name).random()
    b = RngRegistry(seed=seed).stream(name).random()
    assert a == b


# ----------------------------------------------------------------------
# Topology: placement inside field, adjacency symmetric
# ----------------------------------------------------------------------
@settings(max_examples=25)
@given(st.integers(2, 40), st.integers(0, 2**20))
def test_uniform_topology_invariants(n, seed):
    topo = uniform_topology(n, tx_range=30.0, field_side=100.0, rng=random.Random(seed))
    adjacency = topo.adjacency()
    for node, (x, y) in topo.positions.items():
        assert 0.0 <= x <= 100.0 and 0.0 <= y <= 100.0
        for neighbor in adjacency[node]:
            assert node in adjacency[neighbor]
            assert neighbor != node
