"""Tests for the alert / isolation protocol over a real (dense) network."""


from repro.core.agent import LiteworpAgent
from repro.core.config import LiteworpConfig
from repro.crypto.auth import Authenticator
from repro.crypto.keys import PairwiseKeyManager
from repro.net.packet import AlertPacket, Frame
from repro.net.topology import grid_topology
from tests.conftest import Harness


def build_clique(config=None, n_side=3):
    """Dense 3x3 grid (clique at spacing 10, range 30) with agents on all."""
    harness = Harness(grid_topology(columns=n_side, rows=n_side, spacing=10.0, tx_range=30.0))
    keys = PairwiseKeyManager()
    config = config or LiteworpConfig(theta=2)
    agents = {}
    adjacency = harness.topology.adjacency()
    for node_id in harness.topology.node_ids:
        agent = LiteworpAgent(
            harness.sim, harness.node(node_id), keys.enroll(node_id), config, harness.trace
        )
        agent.install_oracle(adjacency)
        agents[node_id] = agent
    return harness, agents, keys


def test_local_detection_revokes_and_alerts():
    harness, agents, _ = build_clique()
    guard = agents[0]
    guard.isolation.handle_local_detection(4)
    assert guard.has_isolated(4)
    assert guard.isolation.alerts_sent > 0
    assert harness.trace.count("guard_detection", guard=0, accused=4) == 1


def test_theta_alerts_isolate_at_recipients():
    harness, agents, _ = build_clique(LiteworpConfig(theta=2))
    agents[0].isolation.handle_local_detection(4)
    agents[1].isolation.handle_local_detection(4)
    harness.run(5.0)
    # Every other neighbor of node 4 should now have revoked it.
    for node_id, agent in agents.items():
        if node_id in (0, 1, 4):
            continue
        assert agent.has_isolated(4), f"node {node_id} did not isolate"
    assert harness.trace.count("isolation", accused=4) > 0


def test_single_alert_insufficient_when_theta_two():
    harness, agents, _ = build_clique(LiteworpConfig(theta=2))
    agents[0].isolation.handle_local_detection(4)
    harness.run(5.0)
    assert not agents[2].has_isolated(4)
    assert agents[2].table.alert_count(4) == 1


def test_forged_alert_rejected():
    harness, agents, keys = build_clique()
    # An outsider injects an alert with a bogus tag.
    bogus = AlertPacket(guard=0, accused=4, recipient=2, auth=Authenticator.forge())
    frame = Frame(packet=bogus, transmitter=0, link_dst=2)
    agents[2].isolation.on_frame(frame)
    assert agents[2].table.alert_count(4) == 0
    assert agents[2].isolation.alerts_rejected == 1
    record = harness.trace.first("alert_rejected", reason="auth")
    assert record is not None


def test_alert_about_non_neighbor_rejected():
    harness, agents, keys = build_clique()
    mgr = keys
    key = mgr.pairwise_key(0, 2)
    alert = AlertPacket(
        guard=0, accused=999, recipient=2,
        auth=Authenticator.tag(key, "alert", 0, 999, 2),
    )
    agents[2].isolation.on_frame(Frame(packet=alert, transmitter=0, link_dst=2))
    assert agents[2].table.alert_count(999) == 0
    assert harness.trace.first("alert_rejected", reason="not_my_neighbor") is not None


def test_alert_from_non_guard_rejected():
    """The claimed guard must be a neighbor of the accused."""
    harness, agents, keys = build_clique()
    # Shrink node 2's stored R_4 so that node 0 is not in it.
    agents[2].table.set_neighbor_list(4, (1, 2, 3))
    key = keys.pairwise_key(0, 2)
    alert = AlertPacket(
        guard=0, accused=4, recipient=2,
        auth=Authenticator.tag(key, "alert", 0, 4, 2),
    )
    agents[2].isolation.on_frame(Frame(packet=alert, transmitter=0, link_dst=2))
    assert agents[2].table.alert_count(4) == 0
    assert harness.trace.first("alert_rejected", reason="not_a_guard") is not None


def test_duplicate_alerts_counted_once():
    harness, agents, keys = build_clique(LiteworpConfig(theta=3))
    key = keys.pairwise_key(0, 2)
    alert = AlertPacket(
        guard=0, accused=4, recipient=2,
        auth=Authenticator.tag(key, "alert", 0, 4, 2),
    )
    frame = Frame(packet=alert, transmitter=0, link_dst=2)
    agents[2].isolation.on_frame(frame)
    agents[2].isolation.on_frame(frame)
    assert agents[2].table.alert_count(4) == 1


def test_two_hop_alert_via_relay():
    """Guard and recipient both neighbor the accused but not each other."""
    # Line: 0 - 1 - 2; 0 and 2 are two hops apart, both neighbor 1.
    harness = Harness(grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0))
    keys = PairwiseKeyManager()
    config = LiteworpConfig(theta=1)
    adjacency = harness.topology.adjacency()
    agents = {}
    for node_id in harness.topology.node_ids:
        agent = LiteworpAgent(
            harness.sim, harness.node(node_id), keys.enroll(node_id), config, harness.trace
        )
        agent.install_oracle(adjacency)
        agents[node_id] = agent
    # Node 0 detects node 1; the only other neighbor of 1 is node 2,
    # reachable only through node 1 itself... no valid relay exists, so the
    # alert is undeliverable (the accused cannot be the relay).
    agents[0].isolation.handle_local_detection(1)
    harness.run(5.0)
    assert harness.trace.count("alert_undeliverable", recipient=2) == 1

    # Add a side node 9 adjacent to both 0 and 2 to serve as relay.
    harness2 = Harness(grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0))
    harness2.topology.positions[9] = (25.0, 15.0)  # 29.2 m from nodes 0 and 2
    # Rebuild with the extra node.
    from repro.net.topology import Topology
    topo = Topology(positions=dict(harness2.topology.positions), tx_range=30.0)
    harness3 = Harness(topo)
    adjacency3 = topo.adjacency()
    agents3 = {}
    for node_id in topo.node_ids:
        agent = LiteworpAgent(
            harness3.sim, harness3.node(node_id), keys.enroll(node_id),
            config, harness3.trace,
        )
        agent.install_oracle(adjacency3)
        agents3[node_id] = agent
    assert 9 in adjacency3[0] and 9 in adjacency3[2]
    agents3[0].isolation.handle_local_detection(1)
    harness3.run(5.0)
    assert agents3[2].has_isolated(1)


def test_revocation_callback_fires():
    harness, agents, _ = build_clique(LiteworpConfig(theta=1))
    revoked = []
    agents[2].isolation.on_revocation(revoked.append)
    agents[0].isolation.handle_local_detection(4)
    harness.run(5.0)
    assert revoked == [4]


def test_alert_relay_disabled_limits_delivery():
    config = LiteworpConfig(theta=1, alert_relay=False)
    harness = Harness(grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0))
    keys = PairwiseKeyManager()
    adjacency = harness.topology.adjacency()
    agents = {}
    for node_id in harness.topology.node_ids:
        agent = LiteworpAgent(
            harness.sim, harness.node(node_id), keys.enroll(node_id), config, harness.trace
        )
        agent.install_oracle(adjacency)
        agents[node_id] = agent
    agents[0].isolation.handle_local_detection(1)
    harness.run(5.0)
    assert not agents[2].has_isolated(1)
    assert harness.trace.count("alert_undeliverable") == 0  # silently skipped
