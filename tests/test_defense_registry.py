"""Defense plugin registry: contract, spec coercion, digests, pins.

Three guarantees live here:

1. **Contract** — every registered defense runs a small wormhole scenario
   to a valid :class:`MetricsReport` through nothing but the plugin
   protocol (no scheme-specific wiring left in the scenario builder).
2. **Digest separation** — the cache digest includes the defense name
   *and* its per-plugin config block, so two defenses with otherwise
   identical configs (or one defense with two tunings) can never collide.
3. **Byte-identity pins** — the four pre-registry schemes produce the
   exact reports they produced before the plugin migration, byte for
   byte, on fixed seeds.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.defenses import (
    Defense,
    DefenseSpec,
    available_defenses,
    get_defense,
    register_defense,
    unregister_defense,
)
from repro.defenses.rtt import RttConfig
from repro.defenses.snd import SndConfig
from repro.experiments.cache import config_digest
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.metrics.collector import MetricsReport


BUILTINS = ("geo_leash", "liteworp", "none", "rtt", "snd", "temporal_leash")


def _report_digest(report: MetricsReport) -> str:
    state = json.dumps(report.to_state(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(state.encode()).hexdigest()


# ----------------------------------------------------------------------
# Registry surface
# ----------------------------------------------------------------------
def test_builtins_registered():
    assert available_defenses() == BUILTINS


def test_get_unknown_defense_names_available():
    with pytest.raises(ValueError, match="unknown defense 'prayer'"):
        get_defense("prayer")


def test_register_rejects_collisions_and_reserved_names():
    class Fake(Defense):
        name = "liteworp"

    with pytest.raises(ValueError, match="already registered"):
        register_defense(Fake())

    class Auto(Defense):
        name = "auto"

    with pytest.raises(ValueError):
        register_defense(Auto())


def test_register_unregister_roundtrip():
    class Custom(Defense):
        name = "custom_scheme"

    register_defense(Custom())
    try:
        assert "custom_scheme" in available_defenses()
        assert isinstance(get_defense("custom_scheme"), Custom)
        # A third-party scheme is a first-class ScenarioConfig value.
        config = ScenarioConfig(n_nodes=16, defense="custom_scheme")
        assert config.effective_defense() == "custom_scheme"
    finally:
        unregister_defense("custom_scheme")
    assert "custom_scheme" not in available_defenses()


# ----------------------------------------------------------------------
# DefenseSpec coercion + config resolution
# ----------------------------------------------------------------------
def test_spec_coercion_forms():
    assert DefenseSpec.coerce("rtt") == DefenseSpec(name="rtt")
    assert DefenseSpec.coerce({"name": "rtt"}) == DefenseSpec(name="rtt")
    spec = DefenseSpec(name="rtt", config=RttConfig(alpha=2.0))
    assert DefenseSpec.coerce(spec) is spec
    with pytest.raises(ValueError, match="DefenseSpec"):
        DefenseSpec.coerce(42)


def test_scenario_config_normalises_all_spellings():
    by_string = ScenarioConfig(n_nodes=16, defense="rtt")
    by_mapping = ScenarioConfig(n_nodes=16, defense={"name": "rtt"})
    by_spec = ScenarioConfig(n_nodes=16, defense=DefenseSpec(name="rtt"))
    assert by_string.defense == by_mapping.defense == by_spec.defense
    assert isinstance(by_string.defense.config, RttConfig)
    # One canonical spec means one cache digest per semantic config.
    assert config_digest(by_string) == config_digest(by_mapping) == config_digest(by_spec)


def test_mapping_config_block_resolves_through_plugin():
    config = ScenarioConfig(
        n_nodes=16, defense={"name": "rtt", "config": {"alpha": 2.5}}
    )
    assert config.defense.config.alpha == 2.5
    with pytest.raises(ValueError, match="bad config for defense 'rtt'"):
        ScenarioConfig(n_nodes=16, defense={"name": "rtt", "config": {"bogus": 1}})


def test_config_block_on_configless_plugin_rejected():
    with pytest.raises(ValueError, match="takes no config block"):
        ScenarioConfig(n_nodes=16, defense={"name": "none", "config": {"x": 1}})


def test_unknown_defense_name_rejected():
    with pytest.raises(ValueError, match="defense must be one of"):
        ScenarioConfig(n_nodes=16, defense="prayer")


def test_auto_resolves_to_liteworp():
    config = ScenarioConfig(n_nodes=16)
    assert config.defense.name == "auto"
    assert config.effective_defense() == "liteworp"


# ----------------------------------------------------------------------
# Cache digest separation
# ----------------------------------------------------------------------
def test_digest_separates_defense_names():
    digests = {
        name: config_digest(ScenarioConfig(n_nodes=16, defense=name))
        for name in BUILTINS
    }
    assert len(set(digests.values())) == len(BUILTINS)


def test_digest_separates_plugin_config_blocks():
    # Same defense, different tuning: before the DefenseSpec digest fix
    # these collided (the plugin block was invisible to the hash).
    loose = ScenarioConfig(
        n_nodes=16, defense=DefenseSpec(name="rtt", config=RttConfig(alpha=1.8))
    )
    tight = ScenarioConfig(
        n_nodes=16, defense=DefenseSpec(name="rtt", config=RttConfig(alpha=3.0))
    )
    assert config_digest(loose) != config_digest(tight)

    slow = ScenarioConfig(
        n_nodes=16, defense=DefenseSpec(name="snd", config=SndConfig(rounds=4))
    )
    fast = ScenarioConfig(
        n_nodes=16, defense=DefenseSpec(name="snd", config=SndConfig(rounds=6))
    )
    assert config_digest(slow) != config_digest(fast)


# ----------------------------------------------------------------------
# Contract: every registered defense completes a wormhole scenario
# ----------------------------------------------------------------------
@pytest.mark.parametrize("defense", BUILTINS)
def test_every_defense_runs_wormhole_scenario(defense):
    config = ScenarioConfig(
        n_nodes=20, duration=60.0, seed=5, attack_mode="outofband",
        n_malicious=2, attack_start=15.0, defense=defense,
    )
    report = run_scenario(config)
    assert isinstance(report, MetricsReport)
    assert report.originated > 0
    assert report.delivered >= 0
    # The plugin's report-time surface is well-formed for every scheme.
    plugin = get_defense(defense)
    plugin_config = config.defense_spec().config
    contribution = plugin.metrics_contribution(report, plugin_config)
    assert all(isinstance(v, float) for v in contribution.values())
    assert isinstance(plugin.detected(report), bool)
    # Round-trips through the cache/journal state format.
    assert MetricsReport.from_state(report.to_state()).to_state() == report.to_state()


# ----------------------------------------------------------------------
# Byte-identity pins for the migrated schemes
# ----------------------------------------------------------------------
#: SHA-256 of the canonical report JSON for each (defense, seed), recorded
#: from the pre-registry if/else scenario builder.  These pins assert the
#: plugin migration changed *nothing* about simulation behavior; update
#: them only for a change that is *supposed* to alter results.
PINNED_DIGESTS = {
    ("liteworp", 7): "06f78b859a36db93e3e11b8812a5b8423dbc9a30d0b1b3297339119dd6fb93de",
    ("liteworp", 11): "4e340dfcab47e43e72d8cc68bf52f280123dac1e7bb6397ff0b2fa6ae44464fc",
    ("geo_leash", 7): "9525cef8958a53bd2fb9851fa8e892f2f5c13f8430532ca39fb18d6820fcb25c",
    ("geo_leash", 11): "b3171c94f1de4951c619f115f669ada508f1a7aba7812189f71d191005996cd4",
    ("temporal_leash", 7): "8f46f9cd339e9b0765b74c6f1e0aabb3013364e58db69bd947a1d58ed2ad94f2",
    ("temporal_leash", 11): "b9b47e191d151f4ec6ebce71204172b4f572e5a2dc8e03576736e229cdd4e5ef",
    ("none", 7): "e04e887c2ada5b781a2b0d5c2f23d578b8cd00547312ceca9c41c77fa9165b24",
    ("none", 11): "c127da897fd3155b7311fecf3431a9760aa704f51601fd04e18b3cbe7870e940",
}


@pytest.mark.parametrize("defense,seed", sorted(PINNED_DIGESTS))
def test_migrated_schemes_byte_identical(defense, seed):
    config = ScenarioConfig(
        n_nodes=24, duration=80.0, seed=seed, attack_mode="outofband",
        n_malicious=2, attack_start=20.0, defense=defense,
    )
    assert _report_digest(run_scenario(config)) == PINNED_DIGESTS[(defense, seed)]
