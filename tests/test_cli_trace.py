"""Tests for the ``trace`` CLI subcommand and the ``--trace-*`` flags."""

import json

import pytest

from repro.cli import build_parser, main


def export(tmp_path, name="trace.jsonl", attack=True, extra=()):
    path = tmp_path / name
    argv = [
        "trace", "export", "--out", str(path),
        "--nodes", "20", "--duration", "60", "--seed", "3",
    ]
    if attack:
        argv += ["--attack", "outofband", "--malicious", "2",
                 "--attack-start", "20"]
    else:
        argv += ["--attack", "none"]
    argv += list(extra)
    assert main(argv) == 0
    return path


def test_trace_export_writes_jsonl(tmp_path, capsys):
    path = export(tmp_path, extra=["--strict"])
    out = capsys.readouterr().out
    assert "records to" in out
    lines = path.read_text().splitlines()
    assert lines
    record = json.loads(lines[0])
    assert {"time", "kind", "fields", "run"} <= set(record)


def test_trace_export_ring_bounds_residency(tmp_path, capsys):
    path = export(tmp_path, extra=["--ring", "50"])
    out = capsys.readouterr().out
    peak = next(
        int(line.split(":")[1]) for line in out.splitlines()
        if "peak resident" in line
    )
    assert peak <= 50
    # The ring bounds memory but the sink still receives every record.
    evicted = next(
        int(line.split(":")[1]) for line in out.splitlines()
        if "evicted" in line
    )
    assert len(path.read_text().splitlines()) == peak + evicted


def test_trace_stats_round_trip(tmp_path, capsys):
    path = export(tmp_path)
    stats_path = tmp_path / "stats.json"
    capsys.readouterr()
    assert main(["trace", "stats", str(path), "--json", str(stats_path)]) == 0
    out = capsys.readouterr().out
    assert "records :" in out and "kinds" in out
    payload = json.loads(stats_path.read_text())
    assert payload["records"] == len(path.read_text().splitlines())
    assert payload["runs"] == 1
    assert "data_origin" in payload["kinds"]


def test_trace_check_clean_run_has_no_violations(tmp_path, capsys):
    path = export(tmp_path, attack=False)
    assert main(["trace", "check", str(path)]) == 0
    out = capsys.readouterr().out
    assert "0 schema error(s)" in out
    assert "0 protocol violation(s)" in out
    assert "0 attack observation(s)" in out


def test_trace_check_flags_wormhole_evidence(tmp_path, capsys):
    path = export(tmp_path, attack=True)
    assert main(["trace", "check", str(path)]) == 0  # attack is not a failure
    out = capsys.readouterr().out
    assert "0 protocol violation(s)" in out
    assert "0 attack observation(s)" not in out
    # ...unless the caller opts in to failing on attack evidence.
    assert main(["trace", "check", str(path), "--fail-on-attack"]) == 1


def test_trace_check_fails_on_schema_error(tmp_path, capsys):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"time": 0.0, "kind": "not-a-kind", "fields": {}}\n')
    assert main(["trace", "check", str(path)]) == 1
    assert "unknown trace kind" in capsys.readouterr().out


def test_fig8_trace_out_flag(tmp_path, capsys):
    path = tmp_path / "fig8.jsonl"
    assert main([
        "fig8", "--nodes", "40", "--duration", "60", "--runs", "1",
        "--trace-out", str(path), "--trace-strict", "--trace-ring", "200",
    ]) == 0
    records = path.read_text().splitlines()
    assert records
    runs = {json.loads(line)["run"] for line in records}
    assert len(runs) > 1  # every sweep point is tagged distinctly
    capsys.readouterr()
    assert main(["trace", "check", str(path)]) == 0


def test_trace_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["trace"])


def test_trace_export_requires_out():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["trace", "export"])


# ----------------------------------------------------------------------
# Missing / empty / truncated exports: one-line errors, never tracebacks
# ----------------------------------------------------------------------
@pytest.mark.parametrize("command", ["stats", "check"])
def test_trace_commands_fail_cleanly_on_missing_file(tmp_path, capsys, command):
    assert main(["trace", command, str(tmp_path / "nope.jsonl")]) == 1
    err = capsys.readouterr().err
    assert "not found" in err
    assert len(err.strip().splitlines()) == 1


@pytest.mark.parametrize("command", ["stats", "check"])
def test_trace_commands_fail_cleanly_on_empty_file(tmp_path, capsys, command):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert main(["trace", command, str(path)]) == 1
    assert "empty" in capsys.readouterr().err


def test_trace_stats_tolerates_truncated_final_line(tmp_path, capsys):
    path = export(tmp_path)
    intact = len(path.read_text().splitlines())
    # Chop the last line mid-JSON, as a killed writer would leave it.
    truncated = path.read_text()[:-20]
    assert not truncated.endswith("\n")
    path.write_text(truncated)
    capsys.readouterr()
    assert main(["trace", "stats", str(path)]) == 0
    captured = capsys.readouterr()
    assert "skipped 1 partial trailing line" in captured.err
    assert f"records : {intact - 1}" in captured.out


def test_trace_check_rejects_midfile_corruption(tmp_path, capsys):
    path = tmp_path / "corrupt.jsonl"
    path.write_text(
        '{"time": 0.0, "kind": "malicious_drop", "fie\n'
        '{"time": 1.0, "kind": "malicious_drop", "fields": {"node": 1, "packet": 2}}\n'
    )
    assert main(["trace", "check", str(path)]) == 1
    assert "malformed trace line" in capsys.readouterr().err


# ----------------------------------------------------------------------
# repro report
# ----------------------------------------------------------------------
def test_report_from_export(tmp_path, capsys):
    path = export(tmp_path)
    json_path = tmp_path / "report.json"
    md_path = tmp_path / "report.md"
    capsys.readouterr()
    assert main(["report", str(path), "--json", str(json_path),
                 "--md", str(md_path)]) == 0
    payload = json.loads(json_path.read_text())
    assert payload["meta"]["records"] == len(path.read_text().splitlines())
    assert payload["latency"]["per_run"]
    assert "# Run report" in md_path.read_text()


def test_report_prints_markdown_by_default(tmp_path, capsys):
    path = export(tmp_path)
    capsys.readouterr()
    assert main(["report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "# Run report" in out
    assert "## Detection-latency decomposition" in out


def test_report_live_matches_export_replay(tmp_path, capsys):
    out_trace = tmp_path / "live.jsonl"
    live_json = tmp_path / "live.json"
    replay_json = tmp_path / "replay.json"
    argv = ["--nodes", "20", "--duration", "60", "--seed", "3",
            "--attack", "outofband", "--malicious", "2", "--attack-start", "20"]
    assert main(["report", "--live", "--out", str(out_trace),
                 "--json", str(live_json), "--md", str(tmp_path / "r.md"),
                 *argv]) == 0
    assert main(["report", str(out_trace), "--json", str(replay_json)]) == 0
    assert live_json.read_bytes() == replay_json.read_bytes()


def test_report_requires_exactly_one_source(tmp_path, capsys):
    assert main(["report"]) == 1
    assert "need a trace export" in capsys.readouterr().err
    path = export(tmp_path)
    capsys.readouterr()
    assert main(["report", str(path), "--live"]) == 1
    assert "not both" in capsys.readouterr().err


def test_report_fails_cleanly_on_missing_file(tmp_path, capsys):
    assert main(["report", str(tmp_path / "nope.jsonl")]) == 1
    assert "not found" in capsys.readouterr().err
