"""Tests for the stable public facade in :mod:`repro.api`."""

import json

import pytest

from repro import api
from repro.experiments.scenario import run_scenario


def test_all_names_resolve():
    for name in api.__all__:
        assert getattr(api, name) is not None


def test_run_accepts_kwargs_config_and_overrides():
    config = api.ScenarioConfig(n_nodes=16, duration=30.0, seed=4,
                                attack_start=10.0)
    from_config = api.run(config)
    from_kwargs = api.run(n_nodes=16, duration=30.0, seed=4, attack_start=10.0)
    reference = run_scenario(config)
    assert from_config.to_state() == reference.to_state()
    assert from_kwargs.to_state() == reference.to_state()
    overridden = api.run(config, seed=5)
    assert overridden.to_state() == run_scenario(
        api.ScenarioConfig(n_nodes=16, duration=30.0, seed=5, attack_start=10.0)
    ).to_state()


def test_sweep_replications_and_path_cache(tmp_path):
    config = api.ScenarioConfig(n_nodes=16, duration=30.0, seed=4,
                                attack_start=10.0)
    cold = api.sweep(config, runs=2, cache=tmp_path / "cache")
    assert len(cold) == 2
    assert cold[0].to_state() != cold[1].to_state()  # distinct derived seeds
    warm = api.sweep(config, runs=2, cache=tmp_path / "cache")
    assert [r.to_state() for r in warm] == [r.to_state() for r in cold]
    assert any((tmp_path / "cache").rglob("*.json"))


def test_campaign_accepts_mapping_and_journal_path(tmp_path):
    spec = {
        "name": "facade",
        "runs": 1,
        "base": {"n_nodes": 16, "duration": 30.0, "attack_start": 10.0},
        "axes": {"n_malicious": [0, 2]},
    }
    journal = tmp_path / "facade.journal.jsonl"
    result = api.campaign(spec, journal=journal, cache=tmp_path / "cache")
    assert result.complete
    assert result.total_jobs == 2
    assert journal.exists()
    resumed = api.campaign(spec, journal=journal, resume=True)
    assert resumed.executed == 0
    assert json.dumps(resumed.aggregate, sort_keys=True) == json.dumps(
        result.aggregate, sort_keys=True
    )


def test_report_from_records_and_path(tmp_path):
    from repro.obs.sinks import JsonlSink
    from repro.sim.trace import TraceLog

    config = api.ScenarioConfig(n_nodes=16, duration=30.0, seed=4,
                                attack_start=10.0)
    scenario = api.build_scenario(config)
    path = tmp_path / "trace.jsonl"
    scenario.trace.attach_sink(JsonlSink(path))
    scenario.run()
    scenario.trace.close_sinks()

    from_records = api.report(list(scenario.trace))
    from_path = api.report(path)
    assert isinstance(from_records, api.RunReport)
    assert from_path.payload["summary"] == from_records.payload["summary"]


def test_removed_legacy_flag_raises():
    with pytest.raises(ValueError, match="liteworp_enabled was removed"):
        api.ScenarioConfig(n_nodes=16, liteworp_enabled=False)


def test_defense_registry_surface_reexported():
    # Third-party plugins work entirely through api.* names.
    assert set(api.available_defenses()) >= {
        "geo_leash", "liteworp", "none", "rtt", "snd", "temporal_leash",
    }
    spec = api.DefenseSpec.coerce("liteworp")
    assert spec.name == "liteworp"
    assert issubclass(api.get_defense("rtt").__class__, api.Defense)
