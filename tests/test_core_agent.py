"""Tests for the composed LITEWORP agent: legitimacy filters, send vetoes,
and routing integration."""

from repro.core.agent import LiteworpAgent
from repro.core.config import LiteworpConfig
from repro.crypto.keys import PairwiseKeyManager
from repro.net.packet import DataPacket, Frame, RouteRequest
from repro.net.topology import grid_topology
from repro.routing.config import RoutingConfig
from repro.routing.ondemand import OnDemandRouting
from tests.conftest import Harness


def build_agent(harness, node_id, config=None, keys=None):
    keys = keys or PairwiseKeyManager()
    agent = LiteworpAgent(
        harness.sim,
        harness.node(node_id),
        keys.enroll(node_id),
        config or LiteworpConfig(),
        harness.trace,
    )
    agent.install_oracle(harness.topology.adjacency())
    return agent


def test_non_neighbor_frames_rejected():
    harness = Harness(grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0))
    agent = build_agent(harness, 1)
    seen = []
    harness.node(1).add_listener(seen.append)
    # A frame claiming to come from node 99 (not a neighbor).
    ghost = Frame(packet=RouteRequest(origin=99, request_id=1, target=1), transmitter=99)
    harness.node(1).deliver(ghost)
    assert seen == []
    assert agent.rejects["nonneighbor"] == 1
    assert harness.trace.count("frame_rejected", reason="nonneighbor") == 1


def test_second_hop_check_rejects_unknown_prev():
    harness = Harness(grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0))
    agent = build_agent(harness, 0)
    seen = []
    harness.node(0).add_listener(seen.append)
    # Node 1 claims the packet came from 77, which is not in R_1.
    frame = Frame(
        packet=RouteRequest(origin=9, request_id=1, target=0),
        transmitter=1,
        prev_hop=77,
    )
    harness.node(0).deliver(frame)
    assert seen == []
    assert agent.rejects["secondhop"] == 1


def test_second_hop_check_accepts_known_prev():
    harness = Harness(grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0))
    agent = build_agent(harness, 0)
    seen = []
    harness.node(0).add_listener(seen.append)
    # Node 1's real neighbors are {0, 2}; claiming prev=2 is plausible.
    frame = Frame(
        packet=RouteRequest(origin=9, request_id=1, target=0),
        transmitter=1,
        prev_hop=2,
    )
    harness.node(0).deliver(frame)
    assert len(seen) == 1


def test_second_hop_check_can_be_disabled():
    harness = Harness(grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0))
    agent = build_agent(harness, 0, config=LiteworpConfig(second_hop_check=False))
    seen = []
    harness.node(0).add_listener(seen.append)
    frame = Frame(
        packet=RouteRequest(origin=9, request_id=1, target=0), transmitter=1, prev_hop=77
    )
    harness.node(0).deliver(frame)
    assert len(seen) == 1


def test_revoked_transmitter_rejected():
    harness = Harness(grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0))
    agent = build_agent(harness, 0)
    agent.table.revoke(1)
    seen = []
    harness.node(0).add_listener(seen.append)
    frame = Frame(packet=RouteRequest(origin=1, request_id=1, target=0), transmitter=1)
    harness.node(0).deliver(frame)
    assert seen == []
    assert agent.rejects["revoked"] == 1


def test_send_to_revoked_vetoed():
    harness = Harness(grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0))
    agent = build_agent(harness, 0)
    agent.table.revoke(1)
    sent = harness.node(0).unicast(
        DataPacket(origin=0, destination=1), next_hop=1, jitter=0.0
    )
    assert not sent
    assert harness.trace.count("send_blocked", node=0) == 1


def test_broadcasts_not_vetoed_by_revocation():
    harness = Harness(grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0))
    agent = build_agent(harness, 0)
    agent.table.revoke(1)
    sent = harness.node(0).broadcast(
        RouteRequest(origin=0, request_id=1, target=2), jitter=0.0
    )
    assert sent


def test_inactive_agent_accepts_everything():
    harness = Harness(grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0))
    keys = PairwiseKeyManager()
    agent = LiteworpAgent(
        harness.sim, harness.node(1), keys.enroll(1), LiteworpConfig(), harness.trace
    )
    # No oracle install, no discovery: not yet activated.
    seen = []
    harness.node(1).add_listener(seen.append)
    frame = Frame(packet=RouteRequest(origin=99, request_id=1, target=1), transmitter=99)
    harness.node(1).deliver(frame)
    assert len(seen) == 1


def test_attach_router_blocks_revoked_next_hops():
    harness = Harness(grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0))
    agent = build_agent(harness, 0)
    router = OnDemandRouting(
        harness.sim, harness.node(0), RoutingConfig(), harness.trace,
        harness.rng.stream("r0"),
    )
    agent.attach_router(router)
    assert router.usable(1)
    agent.table.revoke(1)
    assert not router.usable(1)


def test_attach_router_evicts_routes_on_revocation():
    harness = Harness(grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0))
    agent = build_agent(harness, 0, config=LiteworpConfig(theta=1))
    router = OnDemandRouting(
        harness.sim, harness.node(0), RoutingConfig(), harness.trace,
        harness.rng.stream("r0"),
    )
    agent.attach_router(router)
    router.routes.install(destination=2, next_hop=1, now=0.0)
    agent.isolation.handle_local_detection(1)
    assert router.routes.lookup(2, now=0.1) is None


def test_is_usable_before_activation():
    harness = Harness(grid_topology(columns=2, rows=1, spacing=25.0, tx_range=30.0))
    keys = PairwiseKeyManager()
    agent = LiteworpAgent(
        harness.sim, harness.node(0), keys.enroll(0), LiteworpConfig(), harness.trace
    )
    assert agent.is_usable(1)  # everything usable pre-activation
