"""Tests for the TinyOS-style beacon-tree routing and its wormhole."""

import pytest

from repro.core.agent import LiteworpAgent
from repro.core.config import LiteworpConfig
from repro.crypto.keys import PairwiseKeyManager
from repro.net.topology import grid_topology
from repro.routing.beacon import (
    BeaconConfig,
    BeaconPacket,
    BeaconTreeRouting,
    WormholeBeaconRouting,
)
from tests.conftest import Harness

SINK = 0


def build_tree(columns=5, rows=1, wormhole=(), liteworp=False, spacing=25.0):
    harness = Harness(grid_topology(columns=columns, rows=rows, spacing=spacing,
                                    tx_range=30.0))
    config = BeaconConfig(beacon_interval=5.0)
    keys = PairwiseKeyManager()
    adjacency = harness.topology.adjacency()
    routers = {}
    agents = {}
    wormhole_agents = []
    for node_id in harness.topology.node_ids:
        node = harness.node(node_id)
        rng = harness.rng.stream(f"beacon:{node_id}")
        if node_id in wormhole:
            router = WormholeBeaconRouting(
                harness.sim, node, config, harness.trace, rng, SINK,
                network=harness.network,
            )
            wormhole_agents.append(router)
        else:
            if liteworp:
                agent = LiteworpAgent(
                    harness.sim, node, keys.enroll(node_id), LiteworpConfig(),
                    harness.trace,
                )
                agent.install_oracle(adjacency)
                agents[node_id] = agent
                harness.network.channel.attach_loss_handler(
                    node_id, agent.monitor.note_reception_loss
                )
            router = BeaconTreeRouting(harness.sim, node, config, harness.trace,
                                       rng, SINK)
            if liteworp:
                router.usable = agents[node_id].is_usable
        routers[node_id] = router
    if len(wormhole_agents) == 2:
        wormhole_agents[0].pair_with(wormhole_agents[1])
    routers[SINK].start()
    return harness, routers, agents, wormhole_agents


def test_tree_forms_with_correct_depths():
    harness, routers, _, _ = build_tree(columns=5)
    harness.run(8.0)
    for node_id in range(1, 5):
        assert routers[node_id].parent == node_id - 1
        assert routers[node_id].depth == node_id


def test_readings_climb_to_sink():
    harness, routers, _, _ = build_tree(columns=5)
    harness.run(8.0)
    routers[4].send_reading()
    harness.run(12.0)
    assert harness.trace.count("data_delivered", destination=SINK) == 1


def test_reading_without_parent_fails_gracefully():
    harness, routers, _, _ = build_tree(columns=3)
    # No beacon epoch yet: node 2 has no parent.
    assert routers[2].send_reading() is None
    assert harness.trace.count("data_no_route", node=2) == 1


def test_sink_does_not_send_readings():
    harness, routers, _, _ = build_tree(columns=3)
    with pytest.raises(ValueError):
        routers[SINK].send_reading()


def test_parent_refreshes_each_epoch():
    harness, routers, _, _ = build_tree(columns=3)
    harness.run(18.0)  # several epochs
    parents = [rec for rec in harness.trace.of_kind("beacon_parent")
               if rec["node"] == 2]
    assert len(parents) >= 3


def test_beacon_config_validation():
    with pytest.raises(ValueError):
        BeaconConfig(beacon_interval=0)
    with pytest.raises(ValueError):
        BeaconConfig(forward_jitter=-1)


def test_beacon_packet_key_per_epoch():
    a = BeaconPacket(sink=0, epoch=1, hop_count=0)
    b = BeaconPacket(sink=0, epoch=2, hop_count=0)
    assert a.key() != b.key()
    assert a.forwarded().key() == a.key()
    assert a.forwarded().hop_count == 1


def test_wormhole_captures_distant_subtree():
    """Near end at node 1 (beside the sink), far end at node 8 of a long
    line: distant nodes adopt the wormhole's replayed beacon."""
    harness, routers, _, wa = build_tree(columns=10, wormhole=(1, 8))
    wa[0].activate()
    wa[1].activate()
    harness.run(12.0)
    # Node 9 heard the replayed beacon from node 8 claiming a tiny depth.
    assert routers[9].parent == 8
    assert routers[9].depth is not None and routers[9].depth <= 4


def test_wormhole_swallows_readings():
    harness, routers, _, wa = build_tree(columns=10, wormhole=(1, 8))
    wa[0].activate()
    wa[1].activate()
    harness.run(12.0)
    routers[9].send_reading()
    harness.run(16.0)
    assert harness.trace.count("malicious_drop") >= 1
    assert harness.trace.count("data_delivered", destination=SINK) == 0


def test_honest_before_activation():
    harness, routers, _, wa = build_tree(columns=10, wormhole=(1, 8))
    harness.run(12.0)  # never activated
    routers[9].send_reading()
    harness.run(16.0)
    assert harness.trace.count("malicious_drop") == 0
    assert harness.trace.count("data_delivered", destination=SINK) == 1


def test_liteworp_guards_detect_beacon_wormhole():
    """The far end's forged previous hop is a fabrication: with LITEWORP
    on a dense field the guards accuse it."""
    harness, routers, agents, wa = build_tree(
        columns=4, rows=4, spacing=20.0, wormhole=(5, 10), liteworp=True
    )
    wa[0].activate()
    wa[1].activate()
    harness.run(60.0)
    detected = {
        rec["accused"]
        for rec in harness.trace.of_kind("guard_detection")
        if rec["accused"] in (5, 10)
    }
    assert detected
