"""Run the doctests embedded in module docstrings and classes."""

import doctest

import repro.sim.engine
import repro.sim.rng


def test_engine_doctests():
    results = doctest.testmod(repro.sim.engine, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0


def test_rng_doctests():
    results = doctest.testmod(repro.sim.rng, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
