"""Unit tests for the node pipeline (observers, filters, listeners)."""

from repro.net.packet import DataPacket, Frame
from tests.conftest import Harness
from repro.net.topology import grid_topology


def build_pair():
    harness = Harness(grid_topology(columns=2, rows=1, spacing=10.0, tx_range=30.0))
    return harness, harness.node(0), harness.node(1)


def make_frame(tx=0, dst=None):
    return Frame(packet=DataPacket(origin=tx, destination=9), transmitter=tx, link_dst=dst)


def test_listener_receives_accepted_frame():
    harness, a, b = build_pair()
    seen = []
    b.add_listener(seen.append)
    a.broadcast(DataPacket(origin=0, destination=9), jitter=0.0)
    harness.run(1.0)
    assert len(seen) == 1


def test_filter_rejects_frame():
    harness, a, b = build_pair()
    seen = []
    b.add_filter(lambda frame: False)
    b.add_listener(seen.append)
    a.broadcast(DataPacket(origin=0, destination=9), jitter=0.0)
    harness.run(1.0)
    assert seen == []
    assert b.frames_rejected == 1


def test_observer_sees_rejected_frames():
    harness, a, b = build_pair()
    observed = []
    b.add_filter(lambda frame: False)
    b.add_observer(observed.append)
    a.broadcast(DataPacket(origin=0, destination=9), jitter=0.0)
    harness.run(1.0)
    assert len(observed) == 1


def test_filters_run_in_order_and_short_circuit():
    harness, a, b = build_pair()
    calls = []
    b.add_filter(lambda f: (calls.append("first"), False)[1])
    b.add_filter(lambda f: (calls.append("second"), True)[1])
    a.broadcast(DataPacket(origin=0, destination=9), jitter=0.0)
    harness.run(1.0)
    assert calls == ["first"]


def test_send_filter_vetoes_transmission():
    harness, a, b = build_pair()
    seen = []
    b.add_listener(seen.append)
    a.add_send_filter(lambda frame: False)
    sent = a.broadcast(DataPacket(origin=0, destination=9), jitter=0.0)
    harness.run(1.0)
    assert not sent
    assert seen == []


def test_unicast_sets_link_dst():
    harness, a, b = build_pair()
    seen = []
    b.add_listener(seen.append)
    a.unicast(DataPacket(origin=0, destination=1), next_hop=1, prev_hop=None, jitter=0.0)
    harness.run(1.0)
    assert seen[0].link_dst == 1


def test_broadcast_carries_prev_hop():
    harness, a, b = build_pair()
    seen = []
    b.add_listener(seen.append)
    a.broadcast(DataPacket(origin=0, destination=9), prev_hop=5, jitter=0.0)
    harness.run(1.0)
    assert seen[0].prev_hop == 5


def test_raw_send_preserves_spoofed_transmitter():
    harness, a, b = build_pair()
    seen = []
    b.add_listener(seen.append)
    spoofed = Frame(packet=DataPacket(origin=7, destination=9), transmitter=7)
    a.raw_send(spoofed, jitter=0.0)
    harness.run(1.0)
    assert seen[0].transmitter == 7  # header claims node 7, not node 0


def test_frames_received_counter():
    harness, a, b = build_pair()
    a.broadcast(DataPacket(origin=0, destination=9), jitter=0.0)
    harness.run(1.0)
    assert b.frames_received == 1
