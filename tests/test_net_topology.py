"""Unit tests for topology generation."""

import math
import random

import pytest

from repro.net.topology import (
    Topology,
    choose_separated_nodes,
    farthest_pair,
    field_side_for_density,
    generate_connected_topology,
    grid_topology,
    uniform_topology,
)


def test_field_side_formula():
    # N_B = pi r^2 d, d = N / L^2  =>  L = r sqrt(pi N / N_B)
    side = field_side_for_density(100, 30.0, 8.0)
    assert side == pytest.approx(30.0 * math.sqrt(math.pi * 100 / 8.0))


def test_field_side_invalid_inputs():
    with pytest.raises(ValueError):
        field_side_for_density(0, 30.0, 8.0)
    with pytest.raises(ValueError):
        field_side_for_density(10, 30.0, 0.0)


def test_grid_topology_neighbors():
    topo = grid_topology(columns=3, rows=3, spacing=25.0, tx_range=30.0)
    # Center node 4 has the four orthogonal neighbors (diagonal = 35.4 m).
    assert set(topo.neighbors(4)) == {1, 3, 5, 7}
    # Corner node 0 has two.
    assert set(topo.neighbors(0)) == {1, 3}


def test_grid_topology_is_connected():
    assert grid_topology(4, 4, 25.0, 30.0).is_connected()


def test_uniform_topology_within_field():
    topo = uniform_topology(50, 30.0, 100.0, random.Random(1))
    for x, y in topo.positions.values():
        assert 0 <= x <= 100 and 0 <= y <= 100
    assert topo.size == 50


def test_uniform_topology_deterministic_with_seed():
    a = uniform_topology(10, 30.0, 100.0, random.Random(5))
    b = uniform_topology(10, 30.0, 100.0, random.Random(5))
    assert a.positions == b.positions


def test_generate_connected_topology_degree_and_connectivity():
    topo = generate_connected_topology(50, 30.0, 8.0, random.Random(3), min_degree=2)
    assert topo.is_connected()
    assert all(len(topo.neighbors(n)) >= 2 for n in topo.node_ids)
    # Average degree should be in the ballpark of the target.
    assert 4.0 < topo.average_degree() < 14.0


def test_generate_connected_raises_when_impossible():
    # Absurd density: 2 nodes in a huge field almost never connect.
    with pytest.raises(RuntimeError):
        generate_connected_topology(2, 1.0, 0.0001, random.Random(0), max_tries=3)


def test_hop_distance_line():
    topo = grid_topology(columns=5, rows=1, spacing=25.0, tx_range=30.0)
    assert topo.hop_distance(0, 0) == 0
    assert topo.hop_distance(0, 1) == 1
    assert topo.hop_distance(0, 4) == 4


def test_hop_distance_disconnected():
    topo = Topology(positions={0: (0, 0), 1: (1000, 0)}, tx_range=30.0)
    assert topo.hop_distance(0, 1) is None
    assert not topo.is_connected()


def test_reachable_from():
    topo = grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0)
    assert topo.reachable_from(0) == {0, 1, 2}


def test_choose_separated_nodes_respects_min_hops():
    topo = grid_topology(columns=8, rows=1, spacing=25.0, tx_range=30.0)
    rng = random.Random(2)
    chosen = choose_separated_nodes(topo, 2, min_hops=2, rng=rng)
    assert len(chosen) == 2
    hops = topo.hop_distance(chosen[0], chosen[1])
    assert hops is not None and hops > 2


def test_choose_separated_nodes_zero():
    topo = grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0)
    assert choose_separated_nodes(topo, 0, 2, random.Random(0)) == []


def test_choose_separated_nodes_too_many():
    topo = grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0)
    with pytest.raises(ValueError):
        choose_separated_nodes(topo, 5, 2, random.Random(0))


def test_choose_separated_nodes_impossible():
    topo = grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0)
    # All pairs are <= 2 hops apart in a 3-node line.
    with pytest.raises(RuntimeError):
        choose_separated_nodes(topo, 2, min_hops=2, rng=random.Random(0), max_tries=20)


def test_farthest_pair_prefers_distant_nodes():
    topo = grid_topology(columns=10, rows=1, spacing=25.0, tx_range=30.0)
    a, b = farthest_pair(topo, random.Random(1), samples=100)
    assert abs(a - b) >= 5  # sampled pair spans at least half the line


def test_adjacency_cached():
    topo = grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0)
    assert topo.adjacency() is topo.adjacency()


def test_radio_view_matches_topology():
    topo = grid_topology(columns=3, rows=3, spacing=25.0, tx_range=30.0)
    radio = topo.radio()
    for node in topo.node_ids:
        assert set(radio.neighbors(node)) == set(topo.neighbors(node))
