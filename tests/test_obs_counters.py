"""Per-node counter snapshots and their MetricsReport round-trip."""

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.metrics.collector import MetricsReport
from repro.obs.counters import snapshot_counters, snapshot_node


def small_run(**overrides):
    config = ScenarioConfig(
        n_nodes=20, duration=60.0, seed=3, attack_start=20.0, **overrides
    )
    scenario = build_scenario(config)
    return scenario, scenario.run()


def test_report_carries_per_node_counters():
    scenario, report = small_run()
    assert set(report.node_counters) == set(scenario.agents)
    some = report.node_counters[next(iter(report.node_counters))]
    for key in (
        "fabrications_seen", "drops_seen", "suppressed_accusations",
        "suspended_accusations", "watch_buffer_peak", "malc_total",
        "alerts_sent", "alerts_accepted", "alerts_rejected",
        "alert_retransmits", "acks_verified",
        "reject_nonneighbor", "reject_revoked", "reject_secondhop",
    ):
        assert key in some, key


def test_malc_total_matches_trace_increments():
    scenario, report = small_run()
    for node_id, counters in report.node_counters.items():
        emitted = sum(
            r["value"]
            for r in scenario.trace.of_kind("malc_increment")
            if r["guard"] == node_id
        )
        assert counters["malc_total"] == emitted


def test_counters_survive_state_round_trip():
    _, report = small_run()
    rebuilt = MetricsReport.from_state(report.to_state())
    assert rebuilt == report
    assert rebuilt.node_counters == report.node_counters
    # Node-id keys come back as ints, not the JSON strings.
    assert all(isinstance(k, int) for k in rebuilt.node_counters)


def test_from_state_tolerates_pre_counter_reports():
    """Cache entries written before node_counters existed still load."""
    _, report = small_run()
    state = report.to_state()
    del state["node_counters"]
    rebuilt = MetricsReport.from_state(state)
    assert rebuilt.node_counters == {}


def test_liveness_counters_appear_when_enabled():
    from dataclasses import replace

    config = ScenarioConfig(n_nodes=20, duration=60.0, seed=3, attack_start=20.0)
    config = replace(config, liteworp=replace(config.liteworp, heartbeat_period=2.0))
    scenario = build_scenario(config)
    report = scenario.run()
    some = report.node_counters[next(iter(report.node_counters))]
    assert "heartbeats_sent" in some
    assert some["heartbeats_sent"] >= 1


def test_snapshot_counters_sorted_by_node():
    scenario, _ = small_run()
    snap = snapshot_counters(scenario.agents)
    assert list(snap) == sorted(snap)
    any_id = next(iter(snap))
    assert snap[any_id] == snapshot_node(scenario.agents[any_id])
