"""Unit tests for the section-5.1 coverage analysis."""

import math

import pytest

from repro.analysis.coverage import (
    CoverageParams,
    detection_probability,
    detection_vs_neighbors,
    detection_vs_theta,
    expected_guards,
    false_alarm_probability,
    false_alarm_vs_neighbors,
    guard_region_area,
    guard_region_area_min,
    mean_guard_region_area,
    min_guards,
    per_guard_alert_probability,
    per_guard_false_alarm_probability,
    theta_of_g,
)


# ----------------------------------------------------------------------
# Geometry
# ----------------------------------------------------------------------
def test_lens_area_at_zero_distance_is_full_disk():
    assert guard_region_area(0.0, 1.0) == pytest.approx(math.pi)


def test_lens_area_at_two_r_is_zero():
    assert guard_region_area(2.0, 1.0) == pytest.approx(0.0, abs=1e-12)


def test_lens_area_decreases_with_distance():
    areas = [guard_region_area(x, 1.0) for x in (0.1, 0.5, 0.9, 1.0)]
    assert areas == sorted(areas, reverse=True)


def test_min_area_at_x_equals_r():
    r = 30.0
    # A(r) = r^2 (2 pi/3 - sqrt(3)/2)
    expected = r * r * (2 * math.pi / 3 - math.sqrt(3) / 2)
    assert guard_region_area_min(r) == pytest.approx(expected)


def test_mean_area_scales_with_r_squared():
    assert mean_guard_region_area(2.0) == pytest.approx(4 * mean_guard_region_area(1.0))


def test_mean_area_between_min_and_full_disk():
    r = 1.0
    mean = mean_guard_region_area(r)
    assert guard_region_area_min(r) < mean < math.pi * r * r


def test_expected_guards_paper_constant():
    assert expected_guards(10.0) == pytest.approx(5.1)


def test_expected_guards_exact_close_to_paper():
    # Quadrature constant is in the same ballpark as the paper's 0.51.
    exact = expected_guards(10.0, exact=True)
    assert 4.0 < exact < 7.0


def test_min_guards_below_expected():
    assert min_guards(10.0) < expected_guards(10.0, exact=True)


def test_invalid_geometry_inputs():
    with pytest.raises(ValueError):
        guard_region_area(-1.0, 1.0)
    with pytest.raises(ValueError):
        guard_region_area(3.0, 1.0)
    with pytest.raises(ValueError):
        guard_region_area(1.0, 0.0)


# ----------------------------------------------------------------------
# Detection probability
# ----------------------------------------------------------------------
def test_per_guard_alert_no_collisions_is_certain():
    assert per_guard_alert_probability(0.0, gamma=7, kappa=5) == pytest.approx(1.0)


def test_per_guard_alert_all_collisions_is_zero():
    assert per_guard_alert_probability(1.0, gamma=7, kappa=5) == pytest.approx(0.0)


def test_per_guard_alert_monotone_in_collisions():
    values = [per_guard_alert_probability(p, 7, 5) for p in (0.0, 0.2, 0.5, 0.8)]
    assert values == sorted(values, reverse=True)


def test_per_guard_alert_binomial_hand_check():
    # gamma=2, kappa=2, p_c=0.5: P(see both) = 0.25.
    assert per_guard_alert_probability(0.5, 2, 2) == pytest.approx(0.25)


def test_theta_of_g_insufficient_guards():
    assert theta_of_g(0.9, theta=3, guards=2) == 0.0


def test_theta_of_g_hand_check():
    # theta=1, g=2, p=0.5: 1 - 0.25 = 0.75.
    assert theta_of_g(0.5, 1, 2) == pytest.approx(0.75)


def test_detection_probability_increases_with_guards():
    low = detection_probability(0.05, 7, 5, 3, guards=4)
    high = detection_probability(0.05, 7, 5, 3, guards=10)
    assert high > low


def test_detection_probability_decreases_with_theta():
    series = detection_vs_theta([2, 4, 6, 8], n_neighbors=15.0)
    values = [p for _, p in series]
    assert values == sorted(values, reverse=True)


def test_fig6a_rises_then_falls():
    """The paper's figure 6(a) shape: detection rises with density, peaks,
    then collapses as the collision probability grows."""
    neighbor_counts = list(range(4, 41, 2))
    series = detection_vs_neighbors(neighbor_counts)
    values = [p for _, p in series]
    peak = max(values)
    peak_index = values.index(peak)
    assert peak > 0.9
    assert 0 < peak_index < len(values) - 1
    assert values[-1] < peak * 0.5  # collapses on the right
    assert values[0] < peak  # rising segment exists on the left


def test_invalid_probability_inputs():
    with pytest.raises(ValueError):
        per_guard_alert_probability(-0.1, 7, 5)
    with pytest.raises(ValueError):
        per_guard_alert_probability(1.1, 7, 5)
    with pytest.raises(ValueError):
        per_guard_alert_probability(0.1, 7, 8)  # kappa > gamma
    with pytest.raises(ValueError):
        per_guard_alert_probability(0.1, 0, 0)
    with pytest.raises(ValueError):
        theta_of_g(0.5, 0, 5)
    with pytest.raises(ValueError):
        theta_of_g(0.5, 1, -1)


# ----------------------------------------------------------------------
# False alarms
# ----------------------------------------------------------------------
def test_false_alarm_per_guard_small():
    p = per_guard_false_alarm_probability(0.05, 7, 5)
    assert p < 1e-5


def test_false_alarm_squared_variant_smaller():
    loose = per_guard_false_alarm_probability(0.2, 7, 5)
    strict = per_guard_false_alarm_probability(0.2, 7, 5, squared=True)
    assert strict < loose


def test_false_alarm_network_negligible_at_paper_params():
    """Paper: worst-case false alarm probability is negligible.  (The
    scanned figure's axis scale is garbled; we assert 'negligible' as
    below one percent across the whole density sweep, and far below that
    at the paper's operating density.)"""
    series = false_alarm_vs_neighbors(list(range(4, 41, 2)))
    assert max(p for _, p in series) < 0.01
    at_paper_density = dict(series)[8.0]
    assert at_paper_density < 1e-4


def test_false_alarm_non_monotonic_shape():
    """Figure 6(b)'s non-monotonic shape: rises with guard count, then
    falls as collisions mask both observations."""
    series = false_alarm_vs_neighbors(list(range(4, 61, 2)))
    values = [p for _, p in series]
    peak_index = values.index(max(values))
    assert 0 < peak_index < len(values) - 1
    assert values[-1] < max(values)


def test_false_alarm_zero_collisions_zero():
    assert false_alarm_probability(0.0, 7, 5, 3, 10) == 0.0


def test_coverage_params_collision_model():
    params = CoverageParams(p_collision_base=0.05, n_neighbors_base=3.0)
    assert params.p_collision(3.0) == pytest.approx(0.05)
    assert params.p_collision(6.0) == pytest.approx(0.10)
    assert params.p_collision(1000.0) <= 0.999


def test_coverage_params_guard_count():
    params = CoverageParams()
    assert params.guards(10.0) == 5  # round(5.1)


# ----------------------------------------------------------------------
# Required density (inverse computation, paper 5.1)
# ----------------------------------------------------------------------
def test_density_for_detection_reaches_target():
    from repro.analysis.coverage import CoverageParams, density_for_detection

    params = CoverageParams(theta=3)
    needed = density_for_detection(0.99, params)
    assert needed is not None
    achieved = detection_vs_neighbors([needed], params)[0][1]
    assert achieved >= 0.99 - 1e-6


def test_density_for_detection_monotone_in_theta():
    from dataclasses import replace

    from repro.analysis.coverage import CoverageParams, density_for_detection

    base = CoverageParams()
    easy = density_for_detection(0.95, replace(base, theta=2))
    hard = density_for_detection(0.95, replace(base, theta=3))
    assert easy is not None and hard is not None
    assert hard > easy


def test_density_for_detection_unreachable_returns_none():
    from repro.analysis.coverage import CoverageParams, density_for_detection

    params = CoverageParams(theta=8)  # eight guards must all alert: hopeless
    assert density_for_detection(0.999, params) is None


def test_density_for_detection_validates_inputs():
    from repro.analysis.coverage import density_for_detection

    with pytest.raises(ValueError):
        density_for_detection(1.5)
    with pytest.raises(ValueError):
        density_for_detection(0.9, search_range=(5.0, 2.0))
