"""Unit tests for the trace log."""

from repro.sim.trace import TraceLog


def test_emit_and_len():
    log = TraceLog()
    log.emit(1.0, "thing", value=1)
    log.emit(2.0, "thing", value=2)
    assert len(log) == 2


def test_of_kind_filters():
    log = TraceLog()
    log.emit(1.0, "a")
    log.emit(2.0, "b")
    log.emit(3.0, "a")
    assert [r.time for r in log.of_kind("a")] == [1.0, 3.0]
    assert log.of_kind("missing") == []


def test_first_with_field_match():
    log = TraceLog()
    log.emit(1.0, "drop", node=1)
    log.emit(2.0, "drop", node=2)
    record = log.first("drop", node=2)
    assert record is not None and record.time == 2.0
    assert log.first("drop", node=99) is None


def test_count_with_field_match():
    log = TraceLog()
    log.emit(1.0, "x", node=1)
    log.emit(2.0, "x", node=1)
    log.emit(3.0, "x", node=2)
    assert log.count("x") == 3
    assert log.count("x", node=1) == 2


def test_subscribe_receives_live_records():
    log = TraceLog()
    seen = []
    log.subscribe("evt", seen.append)
    log.emit(1.0, "evt", k="v")
    log.emit(2.0, "other")
    assert len(seen) == 1
    assert seen[0]["k"] == "v"


def test_record_get_and_getitem():
    log = TraceLog()
    record = log.emit(1.0, "evt", a=1)
    assert record["a"] == 1
    assert record.get("missing", "default") == "default"


def test_clear_keeps_subscribers():
    log = TraceLog()
    seen = []
    log.subscribe("evt", seen.append)
    log.emit(1.0, "evt")
    log.clear()
    assert len(log) == 0
    log.emit(2.0, "evt")
    assert len(seen) == 2


def test_iteration_order():
    log = TraceLog()
    log.emit(1.0, "a")
    log.emit(0.5, "b")  # emission order, not time order
    assert [r.kind for r in log] == ["a", "b"]
