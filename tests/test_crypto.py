"""Unit tests for the crypto substrate."""

import pytest

from repro.crypto.auth import AuthError, Authenticator, TAG_BYTES, tag_many
from repro.crypto.keys import PairwiseKeyManager
from repro.crypto.replay import ReplayCache


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def test_pairwise_key_is_symmetric():
    mgr = PairwiseKeyManager(b"master")
    assert mgr.pairwise_key(1, 2) == mgr.pairwise_key(2, 1)


def test_pairwise_keys_differ_per_pair():
    mgr = PairwiseKeyManager(b"master")
    assert mgr.pairwise_key(1, 2) != mgr.pairwise_key(1, 3)
    assert mgr.pairwise_key(1, 2) != mgr.pairwise_key(2, 3)


def test_pairwise_key_with_self_rejected():
    mgr = PairwiseKeyManager(b"master")
    with pytest.raises(ValueError):
        mgr.pairwise_key(4, 4)


def test_keys_differ_across_masters():
    assert (
        PairwiseKeyManager(b"m1").pairwise_key(1, 2)
        != PairwiseKeyManager(b"m2").pairwise_key(1, 2)
    )


def test_empty_master_rejected():
    with pytest.raises(ValueError):
        PairwiseKeyManager(b"")


def test_enrolled_store_derives_keys():
    mgr = PairwiseKeyManager(b"master")
    store = mgr.enroll(7)
    assert store.has_keys
    assert store.key_with(9) == mgr.pairwise_key(7, 9)


def test_outsider_store_has_no_keys():
    mgr = PairwiseKeyManager(b"master")
    outsider = mgr.outsider(1000)
    assert not outsider.has_keys
    assert outsider.key_with(1) is None


# ----------------------------------------------------------------------
# Authentication
# ----------------------------------------------------------------------
def test_tag_roundtrip():
    key = b"k" * 16
    tag = Authenticator.tag(key, "alert", 1, 2)
    assert len(tag) == TAG_BYTES
    assert Authenticator.verify(key, tag, "alert", 1, 2)


def test_tag_rejects_wrong_payload():
    key = b"k" * 16
    tag = Authenticator.tag(key, "alert", 1, 2)
    assert not Authenticator.verify(key, tag, "alert", 1, 3)


def test_tag_rejects_wrong_key():
    tag = Authenticator.tag(b"key-a", "x")
    assert not Authenticator.verify(b"key-b", tag, "x")


def test_verify_with_missing_key_fails():
    tag = Authenticator.tag(b"key", "x")
    assert not Authenticator.verify(None, tag, "x")
    assert not Authenticator.verify(b"", tag, "x")


def test_forged_tag_fails():
    assert not Authenticator.verify(b"key", Authenticator.forge(), "payload")


def test_payload_type_distinction():
    """The canonical encoding must not confuse 1 and "1"."""
    key = b"key"
    assert Authenticator.tag(key, 1) != Authenticator.tag(key, "1")
    assert Authenticator.tag(key, (1, 2)) != Authenticator.tag(key, (12,))
    assert Authenticator.tag(key, None) != Authenticator.tag(key, 0)
    assert Authenticator.tag(key, True) != Authenticator.tag(key, 1)


def test_nested_tuples_supported():
    key = b"key"
    tag = Authenticator.tag(key, ("list", (1, 2, 3)))
    assert Authenticator.verify(key, tag, ("list", (1, 2, 3)))


def test_uncanonicalisable_payload_raises():
    with pytest.raises(AuthError):
        Authenticator.tag(b"key", object())


def test_empty_key_raises():
    with pytest.raises(AuthError):
        Authenticator.tag(b"", "x")


def test_tag_many_skips_missing_keys():
    mgr = PairwiseKeyManager(b"m")
    store = mgr.enroll(1)

    def lookup(recipient):
        return store.key_with(recipient) if recipient != 3 else None

    tags = tag_many(lookup, 1, [2, 3, 4], "payload")
    assert [recipient for recipient, _ in tags] == [2, 4]
    for recipient, tag in tags:
        key = mgr.pairwise_key(1, recipient)
        assert Authenticator.verify(key, tag, 1, "payload")


# ----------------------------------------------------------------------
# Replay cache
# ----------------------------------------------------------------------
def test_replay_first_time_is_fresh():
    cache = ReplayCache()
    assert not cache.seen_before("msg-1", now=0.0)


def test_replay_second_time_is_caught():
    cache = ReplayCache()
    cache.seen_before("msg-1", now=0.0)
    assert cache.seen_before("msg-1", now=1.0)


def test_replay_window_expiry():
    cache = ReplayCache(window=10.0)
    cache.seen_before("msg-1", now=0.0)
    assert not cache.seen_before("msg-1", now=20.0)


def test_replay_within_window_still_caught():
    cache = ReplayCache(window=10.0)
    cache.seen_before("msg-1", now=0.0)
    assert cache.seen_before("msg-1", now=9.0)


def test_replay_max_entries_evicts_oldest():
    cache = ReplayCache(max_entries=2)
    cache.seen_before("a", now=0.0)
    cache.seen_before("b", now=1.0)
    cache.seen_before("c", now=2.0)  # evicts "a"
    assert not cache.seen_before("a", now=3.0)


def test_replay_invalid_params():
    with pytest.raises(ValueError):
        ReplayCache(window=0)
    with pytest.raises(ValueError):
        ReplayCache(max_entries=0)
