"""Unit tests for the unit-disk radio."""

import pytest

from repro.net.radio import UnitDiskRadio, distance


POSITIONS = {0: (0.0, 0.0), 1: (20.0, 0.0), 2: (50.0, 0.0), 3: (20.0, 20.0)}


def radio():
    return UnitDiskRadio(dict(POSITIONS), default_range=30.0)


def test_distance():
    assert distance((0, 0), (3, 4)) == 5.0


def test_coverage_excludes_sender():
    assert 0 not in radio().coverage(0)


def test_coverage_respects_range():
    covered = set(radio().coverage(0))
    assert covered == {1, 3}  # node 2 is 50 m away


def test_coverage_at_exact_range_is_inclusive():
    r = UnitDiskRadio({0: (0.0, 0.0), 1: (30.0, 0.0)}, default_range=30.0)
    assert 1 in r.coverage(0)


def test_neighbors_symmetric_at_default_range():
    r = radio()
    for a in POSITIONS:
        for b in r.neighbors(a):
            assert a in r.neighbors(b)


def test_high_power_extends_coverage_one_way():
    r = radio()
    r.set_tx_range(0, 60.0)
    assert 2 in r.coverage(0)
    # ...but the neighbor relation at default range is unchanged.
    assert 2 not in r.neighbors(0)
    assert 0 not in r.coverage(2)


def test_are_neighbors():
    r = radio()
    assert r.are_neighbors(0, 1)
    assert not r.are_neighbors(0, 2)


def test_common_neighbors():
    r = radio()
    common = set(r.common_neighbors(0, 1))
    assert common == {3}  # node 3 is within 30 of both 0 and 1


def test_position_update_invalidates_cache():
    r = radio()
    assert 2 not in r.coverage(0)
    r.set_position(2, (10.0, 0.0))
    assert 2 in r.coverage(0)


def test_position_update_invalidates_every_memo():
    """Mobility vs the hot-path memos: after ``set_position`` all three
    caches (coverage, coverage+distance, pairwise distance) must reflect
    the new topology, not the memoized one."""
    r = radio()
    # Populate every memo for the original topology.
    assert set(r.coverage(0)) == {1, 3}
    assert dict(r.coverage_with_distance(0)) == {1: 20.0, 3: distance((0, 0), (20, 20))}
    assert r.distance_between(0, 2) == 50.0
    assert r.distance_between(2, 0) == 50.0  # symmetric key

    r.set_position(2, (10.0, 0.0))

    assert r.distance_between(0, 2) == 10.0
    assert r.distance_between(2, 0) == 10.0
    assert set(r.coverage(0)) == {1, 2, 3}
    with_distance = dict(r.coverage_with_distance(0))
    assert with_distance[2] == 10.0
    assert with_distance[1] == 20.0

    # Moving a node out of range shrinks coverage again.
    r.set_position(1, (200.0, 0.0))
    assert set(r.coverage(0)) == {2, 3}
    assert 1 not in dict(r.coverage_with_distance(0))
    assert r.distance_between(0, 1) == 200.0


def test_position_update_invalidates_override_range_memos():
    """Memos are keyed per (sender, range); overrides must refresh too."""
    r = radio()
    r.set_tx_range(0, 60.0)
    assert 2 in r.coverage(0)
    r.set_position(2, (100.0, 0.0))
    assert 2 not in r.coverage(0)
    assert 2 not in dict(r.coverage_with_distance(0))


def test_invalid_ranges_rejected():
    with pytest.raises(ValueError):
        UnitDiskRadio(POSITIONS, default_range=0)
    r = radio()
    with pytest.raises(ValueError):
        r.set_tx_range(0, -1.0)


def test_audible_from():
    r = radio()
    assert r.audible_from(0, [1, 2, 3]) == [1, 3]
    r.set_tx_range(2, 60.0)
    assert r.audible_from(0, [1, 2, 3]) == [1, 2, 3]
