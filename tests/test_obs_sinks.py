"""Trace streaming: ring-buffer residency, sinks, and JSONL round-trip."""

import pytest

from repro.obs.sinks import (
    JsonlSink,
    MemorySink,
    ReadStats,
    read_jsonl,
    record_to_json,
)
from repro.sim.trace import TraceLog


def fill(trace, count, kind="checkpoint"):
    for i in range(count):
        trace.emit(float(i), kind, index=i)


def test_unbounded_log_keeps_everything():
    trace = TraceLog()
    fill(trace, 100)
    assert len(trace) == 100
    assert trace.total_emitted == 100
    assert trace.dropped_records == 0
    assert trace.peak_resident == 100


def test_ring_mode_bounds_residency():
    trace = TraceLog(capacity=10)
    fill(trace, 100)
    assert len(trace) == 10
    assert trace.resident_records == 10
    assert trace.total_emitted == 100
    assert trace.dropped_records == 90
    assert trace.peak_resident == 10
    # The resident window is the newest records.
    assert [r["index"] for r in trace.of_kind("checkpoint")] == list(range(90, 100))


def test_ring_capacity_must_be_positive():
    with pytest.raises(ValueError):
        TraceLog(capacity=0)


def test_sinks_see_records_evicted_from_the_ring():
    trace = TraceLog(capacity=5)
    sink = MemorySink()
    trace.attach_sink(sink)
    fill(trace, 50)
    assert len(sink) == 50
    assert [r["index"] for r in sink.records] == list(range(50))


def test_subscribers_fire_despite_eviction():
    trace = TraceLog(capacity=1)
    seen = []
    trace.subscribe("checkpoint", seen.append)
    fill(trace, 20)
    assert len(seen) == 20


def test_attach_sink_requires_write_method():
    trace = TraceLog()
    with pytest.raises(TypeError):
        trace.attach_sink(object())


def test_detach_and_close_sinks():
    trace = TraceLog()
    sink = MemorySink()
    trace.attach_sink(sink)
    assert trace.sinks == (sink,)
    trace.detach_sink(sink)
    assert trace.sinks == ()
    fill(trace, 3)
    assert len(sink) == 0

    again = MemorySink()
    trace.attach_sink(again)
    trace.close_sinks()
    assert again.closed
    assert trace.sinks == ()


def test_jsonl_sink_round_trips(tmp_path):
    path = tmp_path / "trace.jsonl"
    trace = TraceLog()
    trace.attach_sink(JsonlSink(path, run="run-a"))
    trace.emit(1.5, "alert_sent", guard=0, accused=4, recipient=2)
    trace.emit(2.0, "isolation", node=2, accused=4, alerts=3)
    trace.close_sinks()

    records = list(read_jsonl(path))
    assert [r.kind for r in records] == ["alert_sent", "isolation"]
    assert records[0].time == 1.5
    assert records[0]["guard"] == 0
    assert all(r["__run__"] == "run-a" for r in records)


def test_jsonl_sink_appends_across_writers(tmp_path):
    """Two sinks (as two parallel workers would) share one file safely."""
    path = tmp_path / "trace.jsonl"
    for run in ("run-a", "run-b"):
        trace = TraceLog()
        trace.attach_sink(JsonlSink(path, run=run))
        fill(trace, 5)
        trace.close_sinks()
    records = list(read_jsonl(path))
    assert len(records) == 10
    assert {r["__run__"] for r in records} == {"run-a", "run-b"}


def test_jsonl_serialises_awkward_field_values(tmp_path):
    trace = TraceLog()
    path = tmp_path / "trace.jsonl"
    trace.attach_sink(JsonlSink(path))
    trace.emit(
        0.0, "checkpoint",
        colluders=(3, 7),
        packet=("REQ", 1, 2),
        reach=frozenset({2, 1}),
        nested={"a": (1, 2)},
    )
    trace.close_sinks()
    (record,) = read_jsonl(path)
    assert record["colluders"] == [3, 7]
    assert record["reach"] == [1, 2]
    assert record["nested"] == {"a": [1, 2]}


def test_read_jsonl_reports_malformed_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"time": 0.0, "kind": "ok", "fields": {}}\nnot-json\n')
    with pytest.raises(ValueError, match="bad.jsonl:2"):
        list(read_jsonl(path))


def truncated_export(tmp_path, keep=2):
    """A real export with its final line chopped mid-JSON, as a writer
    killed between ``write`` and flush would leave it."""
    path = tmp_path / "trace.jsonl"
    trace = TraceLog()
    trace.attach_sink(JsonlSink(path))
    fill(trace, keep + 1)
    trace.close_sinks()
    text = path.read_text()
    lines = text.splitlines(keepends=True)
    path.write_text("".join(lines[:keep]) + lines[keep][: len(lines[keep]) // 2])
    return path


def test_read_jsonl_raises_on_truncated_final_line_by_default(tmp_path):
    path = truncated_export(tmp_path)
    with pytest.raises(ValueError, match="malformed trace line"):
        list(read_jsonl(path))


def test_read_jsonl_tolerate_partial_skips_and_counts(tmp_path):
    path = truncated_export(tmp_path, keep=2)
    stats = ReadStats()
    records = list(read_jsonl(path, tolerate_partial=True, stats=stats))
    assert len(records) == 2
    assert stats.records == 2
    assert stats.partial_lines == 1


def test_tolerate_partial_still_rejects_midfile_corruption(tmp_path):
    path = tmp_path / "corrupt.jsonl"
    path.write_text(
        '{"time": 0.0, "kind": "ok", "fie\n'
        '{"time": 1.0, "kind": "ok", "fields": {}}\n'
    )
    stats = ReadStats()
    with pytest.raises(ValueError, match="corrupt.jsonl:1"):
        list(read_jsonl(path, tolerate_partial=True, stats=stats))
    assert stats.partial_lines == 0


def test_tolerate_partial_is_a_noop_on_clean_files(tmp_path):
    path = tmp_path / "trace.jsonl"
    trace = TraceLog()
    trace.attach_sink(JsonlSink(path))
    fill(trace, 3)
    trace.close_sinks()
    stats = ReadStats()
    assert len(list(read_jsonl(path, tolerate_partial=True, stats=stats))) == 3
    assert stats.partial_lines == 0


def test_record_to_json_is_deterministic():
    trace = TraceLog()
    record = trace.emit(1.0, "checkpoint", b=2, a=1)
    assert record_to_json(record) == record_to_json(record)
    assert '"kind":"checkpoint"' in record_to_json(record)


def test_clear_keeps_sinks_and_counts():
    trace = TraceLog(capacity=4)
    sink = MemorySink()
    trace.attach_sink(sink)
    fill(trace, 6)
    trace.clear()
    assert len(trace) == 0
    assert trace.total_emitted == 6
    fill(trace, 1)
    assert len(sink) == 7
