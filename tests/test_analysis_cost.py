"""Unit tests for the section-5.2 cost model."""

import math

import pytest

from repro.analysis.cost import CostModel


def test_neighbor_list_under_half_kb_at_ten_neighbors():
    """Paper: 'for an average of 10 neighbors per node, NBLS is less than
    half a kilobyte'."""
    model = CostModel(avg_neighbors=10.0)
    assert model.neighbor_list_bytes() < 512


def test_neighbor_list_scales_quadratically():
    small = CostModel(avg_neighbors=5.0).neighbor_list_bytes()
    large = CostModel(avg_neighbors=10.0).neighbor_list_bytes()
    # Dominated by the second-hop term: roughly 4x for 2x neighbors.
    assert 3.0 < large / small < 4.2


def test_alert_buffer_size():
    assert CostModel(theta=3).alert_buffer_bytes() == 12


def test_density_from_neighbors():
    model = CostModel(tx_range=30.0, avg_neighbors=10.0)
    assert model.density == pytest.approx(10.0 / (math.pi * 900.0))


def test_nodes_watching_per_reply_paper_example():
    """Paper example: N=100, h=4, N_B such that N_REP ~= 17."""
    # The paper uses its Table-2 density: with r=30 and d tuned so that
    # 2 r^2 (h+1) d gives ~17 for their setup.  Verify our formula's form:
    model = CostModel(n_nodes=100, tx_range=30.0, avg_neighbors=10.0, avg_route_hops=4.0)
    expected = 2 * 900.0 * 5 * model.density
    assert model.nodes_watching_per_reply() == pytest.approx(expected)
    assert 10 < model.nodes_watching_per_reply() < 40


def test_watch_buffer_small():
    """Paper: 'a watch buffer size of 4 entries is more than enough'."""
    model = CostModel(
        n_nodes=100, avg_route_hops=4.0, route_frequency=0.25, watch_window=1.0
    )
    assert model.watch_buffer_entries() < 4


def test_watch_buffer_includes_requests_when_asked():
    base = CostModel(include_requests=False).watches_per_node_per_unit_time()
    with_req = CostModel(include_requests=True).watches_per_node_per_unit_time()
    assert with_req > base


def test_total_memory_under_one_kb():
    """The headline 'lightweight' claim: everything fits in ~1 KB."""
    model = CostModel(avg_neighbors=10.0)
    assert model.total_memory_bytes() < 1024


def test_cpu_utilisation_fraction():
    model = CostModel()
    assert 0.0 < model.cpu_utilisation() < 1.0


def test_report_rows_complete():
    report = CostModel().report()
    names = [name for name, _value, _unit in report.rows()]
    assert "Neighbor lists (NBL)" in names
    assert "Watch buffer provisioned" in names
    assert "CPU utilisation" in names
    assert len(names) == 8


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n_nodes": 0},
        {"tx_range": 0},
        {"avg_neighbors": 0},
        {"avg_route_hops": 0.5},
        {"route_frequency": 0},
    ],
)
def test_invalid_inputs(kwargs):
    with pytest.raises(ValueError):
        CostModel(**kwargs)
