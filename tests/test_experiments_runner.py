"""Parallel sweep runner: determinism, ordering, caching, fan-out."""

import json

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.runner import (
    SweepRunner,
    parallel_map,
    replication_configs,
    resolve_jobs,
)
from repro.experiments.scenario import ScenarioConfig, average_runs
from repro.experiments.seeds import child_seed

TINY = ScenarioConfig(n_nodes=16, duration=40.0, seed=4, attack_start=20.0)


def _canonical(reports):
    return [json.dumps(r.to_state(), sort_keys=True) for r in reports]


def test_resolve_jobs_policy():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(0) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(-1) >= 1


def test_replication_configs_use_hash_seeds():
    configs = replication_configs(TINY, 3)
    assert [c.seed for c in configs] == [child_seed(4, i) for i in range(3)]
    assert configs[0] == TINY  # index 0 is the base config itself
    with pytest.raises(ValueError):
        replication_configs(TINY, 0)


def test_parallel_equals_serial_byte_identical():
    """The acceptance property: a parallel sweep returns byte-identical
    MetricsReports to a serial sweep of the same configs, in order."""
    configs = replication_configs(TINY, 3)
    serial = SweepRunner(jobs=None).run_many(configs)
    parallel = SweepRunner(jobs=2).run_many(configs)
    assert serial == parallel
    assert _canonical(serial) == _canonical(parallel)


def test_average_runs_parallel_matches_serial():
    serial = average_runs(TINY, 3)
    parallel = average_runs(TINY, 3, jobs=2)
    assert _canonical(serial) == _canonical(parallel)


def test_cache_hit_returns_identical_report(tmp_path):
    configs = replication_configs(TINY, 2)
    first = SweepRunner(cache=ResultCache(tmp_path))
    computed = first.run_many(configs)
    assert first.computed == 2 and first.cache_hits == 0

    second = SweepRunner(cache=ResultCache(tmp_path))
    cached = second.run_many(configs)
    assert second.computed == 0 and second.cache_hits == 2
    assert cached == computed
    assert _canonical(cached) == _canonical(computed)


def test_partial_cache_only_computes_misses(tmp_path):
    configs = replication_configs(TINY, 3)
    warm = SweepRunner(cache=ResultCache(tmp_path))
    warm.run_many(configs[:1])
    mixed = SweepRunner(cache=ResultCache(tmp_path))
    reports = mixed.run_many(configs)
    assert mixed.cache_hits == 1
    assert mixed.computed == 2
    assert _canonical(reports) == _canonical(SweepRunner().run_many(configs))


def test_run_one_matches_run_scenario():
    from repro.experiments.scenario import run_scenario

    assert SweepRunner().run_one(TINY) == run_scenario(TINY)


def test_parallel_map_preserves_order():
    assert parallel_map(_square, [3, 1, 2], jobs=2) == [9, 1, 4]
    assert parallel_map(_square, [], jobs=2) == []
    assert parallel_map(_square, [5], jobs=2) == [25]


def test_chaos_sweep_parallel_matches_serial():
    from repro.experiments.chaos import ChaosConfig, run_chaos_sweep

    configs = [
        ChaosConfig(n_nodes=24, duration=100.0, seed=seed, crash_at=50.0,
                    loss_at=60.0, loss_duration=20.0)
        for seed in (1, 2)
    ]
    serial = run_chaos_sweep(configs)
    parallel = run_chaos_sweep(configs, jobs=2)
    assert [r.format() for r in serial] == [r.format() for r in parallel]


def _square(value):
    return value * value
