"""Unit tests for the route cache."""

import pytest

from repro.routing.cache import RouteTable


def test_install_and_lookup():
    table = RouteTable(timeout=50.0)
    entry = table.install(destination=9, next_hop=3, now=10.0, hop_count=4)
    assert table.lookup(9, now=10.0) is entry
    assert entry.next_hop == 3
    assert entry.expires_at == 60.0


def test_lookup_missing():
    table = RouteTable(timeout=50.0)
    assert table.lookup(9, now=0.0) is None


def test_expired_entry_removed_on_lookup():
    table = RouteTable(timeout=50.0)
    table.install(destination=9, next_hop=3, now=0.0)
    assert table.lookup(9, now=49.9) is not None
    assert table.lookup(9, now=50.0) is None
    assert len(table) == 0


def test_reinstall_replaces_entry():
    table = RouteTable(timeout=50.0)
    table.install(destination=9, next_hop=3, now=0.0)
    table.install(destination=9, next_hop=4, now=10.0)
    entry = table.lookup(9, now=20.0)
    assert entry is not None and entry.next_hop == 4
    assert entry.expires_at == 60.0


def test_evict():
    table = RouteTable(timeout=50.0)
    table.install(destination=9, next_hop=3, now=0.0)
    table.evict(9)
    assert table.lookup(9, now=1.0) is None
    table.evict(9)  # idempotent


def test_evict_via_next_hop():
    table = RouteTable(timeout=50.0)
    table.install(destination=9, next_hop=3, now=0.0)
    table.install(destination=8, next_hop=3, now=0.0)
    table.install(destination=7, next_hop=4, now=0.0)
    evicted = table.evict_via(3)
    assert evicted == 2
    assert table.lookup(9, now=1.0) is None
    assert table.lookup(7, now=1.0) is not None


def test_destinations():
    table = RouteTable(timeout=50.0)
    table.install(destination=9, next_hop=3, now=0.0)
    assert table.destinations() == (9,)


def test_entry_fresh():
    table = RouteTable(timeout=10.0)
    entry = table.install(destination=1, next_hop=2, now=5.0)
    assert entry.fresh(14.9)
    assert not entry.fresh(15.0)


def test_invalid_timeout():
    with pytest.raises(ValueError):
        RouteTable(timeout=0)
