"""Unit tests for Timeout and PeriodicTimer."""

from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer, Timeout


def test_timeout_fires_after_delay():
    sim = Simulator()
    fired = []
    timer = Timeout(sim, lambda: fired.append(sim.now))
    timer.start(2.0)
    sim.run()
    assert fired == [2.0]


def test_timeout_cancel_prevents_fire():
    sim = Simulator()
    fired = []
    timer = Timeout(sim, lambda: fired.append(True))
    timer.start(2.0)
    timer.cancel()
    sim.run()
    assert fired == []


def test_timeout_restart_supersedes_old_deadline():
    sim = Simulator()
    fired = []
    timer = Timeout(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    timer.start(5.0)  # re-arm: old deadline dropped
    sim.run()
    assert fired == [5.0]


def test_timeout_armed_and_deadline():
    sim = Simulator()
    timer = Timeout(sim, lambda: None)
    assert not timer.armed
    assert timer.deadline is None
    timer.start(3.0)
    assert timer.armed
    assert timer.deadline == 3.0
    sim.run()
    assert not timer.armed


def test_timeout_can_be_restarted_after_firing():
    sim = Simulator()
    fired = []
    timer = Timeout(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    sim.run()
    timer.start(1.0)
    sim.run()
    assert fired == [1.0, 2.0]


def test_periodic_timer_fires_repeatedly():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, lambda: fired.append(sim.now), lambda: 1.0)
    timer.start()
    sim.run(until=3.5)
    assert fired == [1.0, 2.0, 3.0]


def test_periodic_timer_initial_delay_override():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, lambda: fired.append(sim.now), lambda: 1.0)
    timer.start(initial_delay=0.5)
    sim.run(until=2.6)
    assert fired == [0.5, 1.5, 2.5]


def test_periodic_timer_stop_halts_firing():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, lambda: fired.append(sim.now), lambda: 1.0)
    timer.start()
    sim.run(until=1.5)
    timer.stop()
    sim.run(until=5.0)
    assert fired == [1.0]
    assert not timer.running


def test_periodic_timer_stop_from_callback():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, lambda: (fired.append(sim.now), timer.stop()), lambda: 1.0)
    timer.start()
    sim.run(until=10.0)
    assert fired == [1.0]


def test_periodic_timer_start_is_idempotent():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, lambda: fired.append(sim.now), lambda: 1.0)
    timer.start()
    timer.start()
    sim.run(until=1.5)
    assert fired == [1.0]


def test_periodic_timer_variable_period():
    sim = Simulator()
    periods = iter([1.0, 2.0, 3.0, 100.0])
    fired = []
    timer = PeriodicTimer(sim, lambda: fired.append(sim.now), lambda: next(periods))
    timer.start()
    sim.run(until=7.0)
    assert fired == [1.0, 3.0, 6.0]
