"""Unit tests for Timeout and PeriodicTimer."""

from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer, Timeout


def test_timeout_fires_after_delay():
    sim = Simulator()
    fired = []
    timer = Timeout(sim, lambda: fired.append(sim.now))
    timer.start(2.0)
    sim.run()
    assert fired == [2.0]


def test_timeout_cancel_prevents_fire():
    sim = Simulator()
    fired = []
    timer = Timeout(sim, lambda: fired.append(True))
    timer.start(2.0)
    timer.cancel()
    sim.run()
    assert fired == []


def test_timeout_restart_supersedes_old_deadline():
    sim = Simulator()
    fired = []
    timer = Timeout(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    timer.start(5.0)  # re-arm: old deadline dropped
    sim.run()
    assert fired == [5.0]


def test_timeout_armed_and_deadline():
    sim = Simulator()
    timer = Timeout(sim, lambda: None)
    assert not timer.armed
    assert timer.deadline is None
    timer.start(3.0)
    assert timer.armed
    assert timer.deadline == 3.0
    sim.run()
    assert not timer.armed


def test_timeout_can_be_restarted_after_firing():
    sim = Simulator()
    fired = []
    timer = Timeout(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    sim.run()
    timer.start(1.0)
    sim.run()
    assert fired == [1.0, 2.0]


def test_periodic_timer_fires_repeatedly():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, lambda: fired.append(sim.now), lambda: 1.0)
    timer.start()
    sim.run(until=3.5)
    assert fired == [1.0, 2.0, 3.0]


def test_periodic_timer_initial_delay_override():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, lambda: fired.append(sim.now), lambda: 1.0)
    timer.start(initial_delay=0.5)
    sim.run(until=2.6)
    assert fired == [0.5, 1.5, 2.5]


def test_periodic_timer_stop_halts_firing():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, lambda: fired.append(sim.now), lambda: 1.0)
    timer.start()
    sim.run(until=1.5)
    timer.stop()
    sim.run(until=5.0)
    assert fired == [1.0]
    assert not timer.running


def test_periodic_timer_stop_from_callback():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, lambda: (fired.append(sim.now), timer.stop()), lambda: 1.0)
    timer.start()
    sim.run(until=10.0)
    assert fired == [1.0]


def test_periodic_timer_start_is_idempotent():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, lambda: fired.append(sim.now), lambda: 1.0)
    timer.start()
    timer.start()
    sim.run(until=1.5)
    assert fired == [1.0]


def test_periodic_timer_variable_period():
    sim = Simulator()
    periods = iter([1.0, 2.0, 3.0, 100.0])
    fired = []
    timer = PeriodicTimer(sim, lambda: fired.append(sim.now), lambda: next(periods))
    timer.start()
    sim.run(until=7.0)
    assert fired == [1.0, 3.0, 6.0]


# ----------------------------------------------------------------------
# TimerWheel: the pure-Python mirror of the C kernel's queue structure.
# ----------------------------------------------------------------------
import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.timers import TimerWheel


def test_wheel_orders_mixed_near_and_far_deadlines():
    wheel = TimerWheel(slot_width=1e-3, n_slots=16)
    # 16 slots x 1ms = 16ms horizon: 5.0 and 0.5 overflow, the rest ring.
    times = [0.004, 5.0, 0.0001, 0.5, 0.002, 0.012, 0.004]
    for seq, t in enumerate(times):
        wheel.push(t, seq, f"item{seq}")
    assert wheel.far_count == 2
    popped = []
    while len(wheel):
        popped.append(wheel.pop())
    assert popped == sorted((t, s, f"item{s}") for s, t in enumerate(times))


def test_wheel_fifo_ties_and_peek():
    wheel = TimerWheel(slot_width=1e-3, n_slots=8)
    for seq in range(5):
        wheel.push(1.0, seq, seq)
    assert wheel.peek() == (1.0, 0, 0)
    assert [wheel.pop()[2] for _ in range(5)] == [0, 1, 2, 3, 4]
    assert wheel.pop() is None and wheel.peek() is None


def test_wheel_rejects_push_into_the_past():
    wheel = TimerWheel(slot_width=1e-3, n_slots=8)
    wheel.push(2.0, 0)
    wheel.pop()
    with pytest.raises(ValueError):
        wheel.push(1.0, 1)


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        min_size=1,
        max_size=200,
    ),
    st.integers(min_value=2, max_value=64),
    st.sampled_from([1e-4, 1e-3, 0.1, 1.0]),
)
def test_wheel_matches_heapq_under_interleaved_push_pop(times, n_slots, width):
    """Differential fuzz: wheel pops == heapq pops for any (time, seq) mix,
    including pushes interleaved with pops (times clamped to the clock)."""
    wheel = TimerWheel(slot_width=width, n_slots=n_slots)
    heap = []
    out_wheel, out_heap = [], []
    clock = 0.0
    for seq, t in enumerate(times):
        t = max(t, clock)
        wheel.push(t, seq, seq)
        heapq.heappush(heap, (t, seq, seq))
        if seq % 3 == 2:
            entry = wheel.pop()
            out_wheel.append(entry)
            out_heap.append(heapq.heappop(heap))
            clock = entry[0]
    while len(wheel):
        out_wheel.append(wheel.pop())
        out_heap.append(heapq.heappop(heap))
    assert out_wheel == out_heap
