"""Unit tests for the metrics collector and report."""

from repro.metrics.collector import MetricsCollector
from repro.sim.trace import TraceLog


def make(malicious=(5,), honest_neighbors=None):
    trace = TraceLog()
    collector = MetricsCollector(
        trace,
        malicious_ids=malicious,
        honest_neighbors=honest_neighbors or {5: frozenset({1, 2})},
    )
    return trace, collector


def test_origin_delivery_counting():
    trace, collector = make()
    trace.emit(1.0, "data_origin", packet=("DATA", 0, 1, 1), origin=0, destination=1)
    trace.emit(1.5, "data_delivered", packet=("DATA", 0, 1, 1), origin=0, destination=1)
    trace.emit(2.0, "data_origin", packet=("DATA", 0, 1, 2), origin=0, destination=1)
    report = collector.report(duration=10.0)
    assert report.originated == 2
    assert report.delivered == 1
    assert report.undelivered == 1
    assert report.fraction_dropped == 0.5


def test_wormhole_drop_series():
    trace, collector = make()
    for t in (10.0, 20.0, 30.0):
        trace.emit(t, "malicious_drop", node=5, packet=())
    report = collector.report(duration=40.0)
    assert report.wormhole_drops == 3
    assert report.cumulative_drops_at(5.0) == 0
    assert report.cumulative_drops_at(20.0) == 2
    assert report.drop_series([10.0, 25.0, 40.0]) == [1, 2, 3]


def test_malicious_route_by_path_membership():
    trace, collector = make()
    trace.emit(
        1.0, "route_established", origin=0, target=9, request_id=1,
        hop_count=3, path=(0, 5, 9), next_hop=3,
    )
    trace.emit(
        2.0, "route_established", origin=0, target=9, request_id=2,
        hop_count=3, path=(0, 4, 9), next_hop=3,
    )
    report = collector.report()
    assert report.routes_established == 2
    assert report.malicious_routes == 1
    assert report.fraction_malicious_routes == 0.5


def test_malicious_route_by_next_hop():
    trace, collector = make()
    trace.emit(
        1.0, "route_established", origin=0, target=9, request_id=1,
        hop_count=1, path=(0, 9), next_hop=5,
    )
    assert collector.report().malicious_routes == 1


def test_isolation_latency_requires_all_honest_neighbors():
    trace, collector = make(honest_neighbors={5: frozenset({1, 2})})
    trace.emit(50.0, "wormhole_activity", node=5)
    trace.emit(60.0, "guard_detection", guard=1, accused=5)
    report = collector.report()
    assert report.isolation_latency(5) is None  # node 2 has not revoked yet
    trace.emit(70.0, "isolation", node=2, accused=5)
    report = collector.report()
    assert report.isolation_latency(5) == 20.0


def test_false_accusations_tracked_separately():
    trace, collector = make()
    trace.emit(10.0, "guard_detection", guard=1, accused=7)  # 7 is honest
    report = collector.report()
    assert report.false_isolations == {7: 1}
    assert report.isolation_times == {}


def test_detection_and_isolation_counters():
    trace, collector = make()
    trace.emit(1.0, "guard_detection", guard=1, accused=5)
    trace.emit(2.0, "isolation", node=2, accused=5)
    report = collector.report()
    assert report.detections == 1
    assert report.isolations == 1


def test_revokers_of_accumulates():
    trace, collector = make()
    trace.emit(1.0, "guard_detection", guard=1, accused=5)
    trace.emit(2.0, "isolation", node=2, accused=5)
    assert collector.revokers_of(5) == frozenset({1, 2})
    assert collector.fully_isolated(5)


def test_empty_report_fractions():
    _trace, collector = make()
    report = collector.report(duration=10.0)
    assert report.fraction_dropped == 0.0
    assert report.fraction_malicious_routes == 0.0
    assert report.mean_isolation_latency() is None


def test_mean_isolation_latency():
    trace, collector = make(
        malicious=(5, 6),
        honest_neighbors={5: frozenset({1}), 6: frozenset({2})},
    )
    trace.emit(10.0, "wormhole_activity", node=5)
    trace.emit(10.0, "wormhole_activity", node=6)
    trace.emit(20.0, "isolation", node=1, accused=5)
    trace.emit(40.0, "isolation", node=2, accused=6)
    report = collector.report()
    assert report.mean_isolation_latency() == 20.0  # (10 + 30) / 2


def test_fraction_wormhole_dropped():
    trace, collector = make()
    trace.emit(1.0, "data_origin", packet=("DATA", 0, 1, 1), origin=0, destination=1)
    trace.emit(2.0, "data_origin", packet=("DATA", 0, 1, 2), origin=0, destination=1)
    trace.emit(3.0, "malicious_drop", node=5, packet=("DATA", 0, 1, 2))
    report = collector.report()
    assert report.fraction_wormhole_dropped == 0.5
