"""Property tests: the grid-indexed radio equals the brute-force radio.

Hypothesis drives random topologies, per-node range overrides and
interleaved mobility moves through two UnitDiskRadio instances — one with
the spatial grid, one with the brute-force scans — and requires every
query to return *identical* results (same elements, same order, same
distances), which is the byte-identity contract the engine rearchitecture
rests on.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.grid import SpatialGrid
from repro.net.radio import UnitDiskRadio

_coord = st.floats(
    min_value=-150.0, max_value=150.0, allow_nan=False, allow_infinity=False
)
_positions = st.lists(st.tuples(_coord, _coord), min_size=1, max_size=40).map(
    lambda pts: {i: p for i, p in enumerate(pts)}
)
_range_mult = st.sampled_from([0.25, 0.5, 1.0, 2.0, 3.0, 7.5])


def _pair(positions):
    indexed = UnitDiskRadio(positions, default_range=30.0, use_grid=True)
    brute = UnitDiskRadio(positions, default_range=30.0, use_grid=False)
    assert indexed.uses_grid_index and not brute.uses_grid_index
    return indexed, brute


def _assert_all_queries_equal(indexed, brute):
    nodes = indexed.node_ids
    for node in nodes:
        assert indexed.coverage(node) == brute.coverage(node)
        assert indexed.coverage_with_distance(node) == brute.coverage_with_distance(node)
        assert indexed.neighbors(node) == brute.neighbors(node)
    for a in nodes[:8]:
        for b in nodes[:8]:
            if a != b:
                assert indexed.common_neighbors(a, b) == brute._brute_common_neighbors(a, b)
    for receiver in nodes[:8]:
        assert indexed.audible_from(receiver, nodes) == brute._brute_audible_from(
            receiver, nodes
        )


@settings(max_examples=60, deadline=None)
@given(positions=_positions)
def test_static_queries_match_brute_force(positions):
    indexed, brute = _pair(positions)
    _assert_all_queries_equal(indexed, brute)


@settings(max_examples=40, deadline=None)
@given(
    positions=_positions,
    overrides=st.lists(st.tuples(st.integers(0, 39), _range_mult), max_size=6),
)
def test_range_overrides_match_brute_force(positions, overrides):
    indexed, brute = _pair(positions)
    for node, mult in overrides:
        if node in positions:
            indexed.set_tx_range(node, 30.0 * mult)
            brute.set_tx_range(node, 30.0 * mult)
    _assert_all_queries_equal(indexed, brute)


@settings(max_examples=40, deadline=None)
@given(
    positions=_positions,
    moves=st.lists(
        st.tuples(st.integers(0, 39), st.tuples(_coord, _coord)), max_size=10
    ),
    overrides=st.lists(st.tuples(st.integers(0, 39), _range_mult), max_size=4),
)
def test_interleaved_mobility_matches_brute_force(positions, moves, overrides):
    indexed, brute = _pair(positions)
    ops = [("move", m) for m in moves] + [("range", o) for o in overrides]
    for i, (kind, payload) in enumerate(ops):
        node, value = payload
        if node not in positions:
            continue
        if kind == "move":
            indexed.set_position(node, value)
            brute.set_position(node, value)
        else:
            indexed.set_tx_range(node, 30.0 * value)
            brute.set_tx_range(node, 30.0 * value)
        # Query mid-stream every few ops so stale cells would be caught.
        if i % 3 == 0:
            assert indexed.coverage_with_distance(node) == brute.coverage_with_distance(node)
    _assert_all_queries_equal(indexed, brute)


def test_grid_cell_migration_is_incremental():
    positions = {i: (float(i * 10), 0.0) for i in range(20)}
    grid = SpatialGrid(positions, cell_size=30.0)
    assert sum(len(b) for b in grid._cells.values()) == 20
    # Move within the same cell: bucket membership untouched.
    cell_before = grid._cell_of[0]
    grid.move(0, (1.0, 1.0))
    assert grid._cell_of[0] == cell_before
    # Move across cells: old bucket shrinks or disappears, new one gains.
    grid.move(0, (1000.0, 1000.0))
    assert grid._cell_of[0] == (math.floor(1000.0 / 30.0), math.floor(1000.0 / 30.0))
    assert 0 in grid._cells[grid._cell_of[0]]
    assert sum(len(b) for b in grid._cells.values()) == 20
