"""Tests for experiment record persistence."""

import pytest

from repro.experiments.records import ExperimentRecord, run_and_record
from repro.experiments.scenario import ScenarioConfig


@pytest.fixture(scope="module")
def small_record(tmp_path_factory):
    config = ScenarioConfig(n_nodes=20, duration=80.0, seed=3, attack_start=30.0)
    path = tmp_path_factory.mktemp("records") / "small.json"
    record = run_and_record("smoke", config, runs=2, path=path, notes="unit test")
    return record, path, config


def test_record_contains_all_runs(small_record):
    record, _path, _config = small_record
    assert record.name == "smoke"
    assert len(record.reports) == 2
    assert record.notes == "unit test"


def test_record_captures_config(small_record):
    record, _path, _config = small_record
    assert record.config["n_nodes"] == 20
    assert record.config["attack_mode"] == "outofband"
    assert record.config["liteworp"]["theta"] == 3  # nested dataclass


def test_record_roundtrips_through_json(small_record):
    record, path, _config = small_record
    loaded = ExperimentRecord.load(path)
    assert loaded.name == record.name
    assert loaded.reports == record.reports
    assert loaded.config == record.config


def test_metric_summary(small_record):
    record, _path, _config = small_record
    summary = record.metric("originated")
    assert summary.count == 2
    assert summary.mean > 0


def test_isolation_latency_summary(small_record):
    record, _path, _config = small_record
    summary = record.isolation_latency_summary()
    # With 2 colluders per run some isolations should exist; if none, the
    # summary is simply empty — both are valid, but the type must hold.
    assert summary.count >= 0


def test_save_creates_parent_dirs(tmp_path):
    record = ExperimentRecord(name="x", config={}, reports=[])
    target = tmp_path / "deep" / "nested" / "record.json"
    record.save(target)
    assert target.exists()
    assert ExperimentRecord.load(target).name == "x"
