"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_taxonomy_command(capsys):
    assert main(["taxonomy"]) == 0
    out = capsys.readouterr().out
    assert "Packet encapsulation" in out
    assert "Out-of-band channel" in out


def test_cost_command(capsys):
    assert main(["cost"]) == 0
    out = capsys.readouterr().out
    assert "Neighbor lists (NBL)" in out


def test_fig6_command(capsys):
    assert main(["fig6"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6(a)" in out and "Figure 6(b)" in out


def test_run_command_small(capsys):
    code = main([
        "run", "--nodes", "20", "--duration", "80", "--seed", "3",
        "--attack", "outofband", "--malicious", "2", "--attack-start", "30",
        "--defense", "liteworp",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "wormhole drops" in out
    assert "malicious nodes" in out


def test_run_command_no_attack(capsys):
    code = main([
        "run", "--nodes", "20", "--duration", "60", "--attack", "none",
        "--defense", "none",
    ])
    assert code == 0
    assert "wormhole drops        : 0" in capsys.readouterr().out


def test_parser_rejects_unknown_attack():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--attack", "quantum"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_fig10_command_tiny(capsys):
    code = main(["fig10", "--nodes", "40", "--duration", "120", "--runs", "1"])
    assert code == 0
    assert "theta" in capsys.readouterr().out


def test_run_command_json_output(tmp_path, capsys):
    target = tmp_path / "out" / "report.json"
    code = main([
        "run", "--nodes", "20", "--duration", "60", "--attack", "none",
        "--defense", "none", "--json", str(target),
    ])
    assert code == 0
    import json
    payload = json.loads(target.read_text())
    assert payload["wormhole_drops"] == 0
    assert payload["originated"] >= 0


def test_fig10_jobs_and_cache_flags(tmp_path, capsys):
    argv = ["fig10", "--nodes", "40", "--duration", "120", "--runs", "1",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache")]
    assert main(argv) == 0
    first = capsys.readouterr().out
    # Second invocation is served from the cache and must print the same table.
    assert main(argv) == 0
    assert capsys.readouterr().out == first
    assert any((tmp_path / "cache").rglob("*.json"))


def test_fig10_no_cache_flag(tmp_path, capsys):
    argv = ["fig10", "--nodes", "40", "--duration", "120", "--runs", "1",
            "--no-cache", "--cache-dir", str(tmp_path / "cache")]
    assert main(argv) == 0
    assert "theta" in capsys.readouterr().out
    assert not (tmp_path / "cache").exists()


def test_profile_flag_prints_hot_spots(capsys):
    code = main(["--profile", "--profile-top", "5", "run", "--nodes", "16",
                 "--duration", "40", "--attack", "none", "--defense", "none"])
    assert code == 0
    out = capsys.readouterr().out
    assert "cProfile: top 5" in out
    assert "cumulative" in out


def test_bench_command_quick(tmp_path, capsys):
    code = main(["bench", "--only", "engine", "--output-dir", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "engine:" in out
    import json
    payload = json.loads((tmp_path / "BENCH_engine.json").read_text())
    assert payload["name"] == "engine"
    assert payload["samples"]


def test_bench_rejects_unknown_name(tmp_path):
    with pytest.raises(ValueError):
        main(["bench", "--only", "bogus", "--output-dir", str(tmp_path)])


def test_bench_trace_measures_per_sink_overhead(tmp_path, capsys):
    assert main(["bench", "--only", "trace", "--output-dir", str(tmp_path)]) == 0
    import json
    payload = json.loads((tmp_path / "BENCH_trace.json").read_text())
    metrics = payload["metrics"]
    for config in ("no_sink", "memory_sink", "jsonl_sink", "ring"):
        assert metrics[f"{config}_ns_per_emit"] > 0.0
    for config in ("memory_sink", "jsonl_sink", "ring"):
        assert metrics[f"{config}_overhead"] > 0.0
    assert {s["config"] for s in payload["samples"]} == {
        "no_sink", "memory_sink", "jsonl_sink", "ring",
    }


def test_bench_sweep_records_harness_spans():
    from repro.bench import bench_sweep

    result = bench_sweep(quick=True, jobs=1, runs=1)
    assert result.metrics["byte_identical"] is True
    spans = result.spans
    assert "sweep.fanout" in spans
    assert "sweep.fanout/scenario.build" in spans
    assert "sweep.fanout/scenario.run" in spans
    assert "sweep.fanout/metrics.collect" in spans
    assert "cache.store" in spans
    assert "cache.lookup" in spans
    assert result.to_dict()["spans"] == spans


def test_chaos_parser_defaults():
    args = build_parser().parse_args(["chaos", "--no-liveness", "--seed", "9"])
    assert args.command == "chaos"
    assert args.liveness is False
    assert args.seed == 9
    assert args.crash_fraction == 0.2
    assert args.loss == 0.10
