"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_taxonomy_command(capsys):
    assert main(["taxonomy"]) == 0
    out = capsys.readouterr().out
    assert "Packet encapsulation" in out
    assert "Out-of-band channel" in out


def test_cost_command(capsys):
    assert main(["cost"]) == 0
    out = capsys.readouterr().out
    assert "Neighbor lists (NBL)" in out


def test_fig6_command(capsys):
    assert main(["fig6"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6(a)" in out and "Figure 6(b)" in out


def test_run_command_small(capsys):
    code = main([
        "run", "--nodes", "20", "--duration", "80", "--seed", "3",
        "--attack", "outofband", "--malicious", "2", "--attack-start", "30",
        "--defense", "liteworp",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "wormhole drops" in out
    assert "malicious nodes" in out


def test_run_command_no_attack(capsys):
    code = main([
        "run", "--nodes", "20", "--duration", "60", "--attack", "none",
        "--defense", "none",
    ])
    assert code == 0
    assert "wormhole drops        : 0" in capsys.readouterr().out


def test_parser_rejects_unknown_attack():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--attack", "quantum"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_fig10_command_tiny(capsys):
    code = main(["fig10", "--nodes", "40", "--duration", "120", "--runs", "1"])
    assert code == 0
    assert "theta" in capsys.readouterr().out


def test_run_command_json_output(tmp_path, capsys):
    target = tmp_path / "out" / "report.json"
    code = main([
        "run", "--nodes", "20", "--duration", "60", "--attack", "none",
        "--defense", "none", "--json", str(target),
    ])
    assert code == 0
    import json
    payload = json.loads(target.read_text())
    assert payload["wormhole_drops"] == 0
    assert payload["originated"] >= 0


def test_fig10_jobs_and_cache_flags(tmp_path, capsys):
    argv = ["fig10", "--nodes", "40", "--duration", "120", "--runs", "1",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache")]
    assert main(argv) == 0
    first = capsys.readouterr().out
    # Second invocation is served from the cache and must print the same table.
    assert main(argv) == 0
    assert capsys.readouterr().out == first
    assert any((tmp_path / "cache").rglob("*.json"))


def test_fig10_no_cache_flag(tmp_path, capsys):
    argv = ["fig10", "--nodes", "40", "--duration", "120", "--runs", "1",
            "--no-cache", "--cache-dir", str(tmp_path / "cache")]
    assert main(argv) == 0
    assert "theta" in capsys.readouterr().out
    assert not (tmp_path / "cache").exists()


def test_profile_flag_prints_hot_spots(capsys):
    code = main(["--profile", "--profile-top", "5", "run", "--nodes", "16",
                 "--duration", "40", "--attack", "none", "--defense", "none"])
    assert code == 0
    out = capsys.readouterr().out
    assert "cProfile: top 5" in out
    assert "cumulative" in out


def test_bench_command_quick(tmp_path, capsys):
    code = main(["bench", "--only", "engine", "--output-dir", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "engine:" in out
    import json
    payload = json.loads((tmp_path / "BENCH_engine.json").read_text())
    assert payload["name"] == "engine"
    assert payload["samples"]


def test_bench_rejects_unknown_name(tmp_path):
    with pytest.raises(ValueError):
        main(["bench", "--only", "bogus", "--output-dir", str(tmp_path)])


def test_bench_trace_measures_per_sink_overhead(tmp_path, capsys):
    assert main(["bench", "--only", "trace", "--output-dir", str(tmp_path)]) == 0
    import json
    payload = json.loads((tmp_path / "BENCH_trace.json").read_text())
    metrics = payload["metrics"]
    for config in ("no_sink", "memory_sink", "jsonl_sink", "ring"):
        assert metrics[f"{config}_ns_per_emit"] > 0.0
    for config in ("memory_sink", "jsonl_sink", "ring"):
        assert metrics[f"{config}_overhead"] > 0.0
    assert {s["config"] for s in payload["samples"]} == {
        "no_sink", "memory_sink", "jsonl_sink", "ring",
    }


def test_bench_sweep_records_harness_spans():
    from repro.bench import bench_sweep

    result = bench_sweep(quick=True, jobs=1, runs=1)
    assert result.metrics["byte_identical"] is True
    spans = result.spans
    assert "sweep.fanout" in spans
    assert "sweep.fanout/scenario.build" in spans
    assert "sweep.fanout/scenario.run" in spans
    assert "sweep.fanout/metrics.collect" in spans
    assert "cache.store" in spans
    assert "cache.lookup" in spans
    assert result.to_dict()["spans"] == spans


def test_figure_command_matches_legacy_alias(capsys):
    argv_tail = ["--nodes", "40", "--duration", "120", "--runs", "1"]
    assert main(["figure", "10"] + argv_tail) == 0
    unified = capsys.readouterr()
    assert "theta" in unified.out
    assert main(["fig10"] + argv_tail) == 0
    legacy = capsys.readouterr()
    assert legacy.out == unified.out
    assert "deprecated" in legacy.err
    assert "repro figure 10" in legacy.err
    assert "deprecated" not in unified.err


def test_figure_rejects_unknown_number():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "7"])


def _write_tiny_spec(tmp_path, runs=1):
    import json
    spec = tmp_path / "study.json"
    spec.write_text(json.dumps({
        "name": "cli-smoke",
        "runs": runs,
        "base": {"n_nodes": 16, "duration": 30.0, "attack_start": 10.0},
        "axes": {"n_malicious": [0, 2]},
    }))
    return spec


def test_campaign_plan_lists_jobs(tmp_path, capsys):
    spec = _write_tiny_spec(tmp_path, runs=2)
    assert main(["campaign", "plan", str(spec)]) == 0
    out = capsys.readouterr().out
    assert "cli-smoke: 4 job(s)" in out
    assert "n_malicious=2 #1" in out


def test_campaign_run_interrupt_resume_and_status(tmp_path, capsys):
    spec = _write_tiny_spec(tmp_path)
    journal = tmp_path / "study.journal.jsonl"
    cache = tmp_path / "cache"

    # Uninterrupted reference aggregate.
    ref_out = tmp_path / "ref.json"
    assert main(["campaign", "run", str(spec), "--quiet", "--no-cache",
                 "--journal", str(tmp_path / "ref.jsonl"),
                 "--out", str(ref_out)]) == 0
    capsys.readouterr()

    # Interrupted run exits 75 and leaves a resumable journal.
    code = main(["campaign", "run", str(spec), "--quiet",
                 "--cache-dir", str(cache), "--max-jobs", "1"])
    captured = capsys.readouterr()
    assert code == 75
    assert "--resume" in captured.err
    assert journal.exists()  # default journal path: next to the spec

    # Status reports the partial journal against the spec.
    assert main(["campaign", "status", str(journal), "--spec", str(spec)]) == 0
    status = capsys.readouterr().out
    assert "1 completed job(s)" in status
    assert "1/2 job(s) journaled" in status

    # Resume finishes the rest and reproduces the aggregate byte for byte.
    resumed_out = tmp_path / "resumed.json"
    assert main(["campaign", "run", str(spec), "--quiet", "--resume",
                 "--cache-dir", str(cache), "--out", str(resumed_out)]) == 0
    resumed = capsys.readouterr()
    assert "journal=1" in resumed.out
    assert resumed_out.read_bytes() == ref_out.read_bytes()


def test_campaign_resume_without_journal_errors(tmp_path, capsys):
    spec = _write_tiny_spec(tmp_path)
    code = main(["campaign", "run", str(spec), "--no-journal", "--resume"])
    assert code == 1
    assert "--resume needs a journal" in capsys.readouterr().err


def test_campaign_run_bad_spec(tmp_path, capsys):
    bad = tmp_path / "bad.toml"
    bad.write_text("name = ")
    assert main(["campaign", "run", str(bad)]) == 1
    assert "error:" in capsys.readouterr().err


def test_campaign_trace_out_streams_job_records(tmp_path, capsys):
    spec = _write_tiny_spec(tmp_path)
    trace_out = tmp_path / "progress.jsonl"
    assert main(["campaign", "run", str(spec), "--quiet", "--no-cache",
                 "--trace-out", str(trace_out)]) == 0
    capsys.readouterr()
    import json
    lines = [json.loads(line) for line in trace_out.read_text().splitlines()]
    job_records = [l for l in lines if l.get("kind") == "campaign_job"]
    assert len(job_records) == 2
    assert all(r["fields"]["source"] == "run" for r in job_records)


def test_chaos_parser_defaults():
    args = build_parser().parse_args(["chaos", "--no-liveness", "--seed", "9"])
    assert args.command == "chaos"
    assert args.liveness is False
    assert args.seed == 9
    assert args.crash_fraction == 0.2
    assert args.loss == 0.10
