"""Tests for the statistics helpers and report serialisation."""

import json

import pytest

from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.experiments.stats import summarize, summarize_optional


def test_summarize_basic():
    s = summarize([1.0, 2.0, 3.0])
    assert s.mean == pytest.approx(2.0)
    assert s.std == pytest.approx(1.0)
    assert s.count == 3


def test_summarize_empty():
    s = summarize([])
    assert s.mean == 0.0 and s.std == 0.0 and s.count == 0
    assert s.sem == 0.0


def test_summarize_single_value():
    s = summarize([5.0])
    assert s.mean == 5.0 and s.std == 0.0 and s.count == 1


def test_confidence_interval_contains_mean():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    low, high = s.confidence_interval()
    assert low < s.mean < high


def test_sem_shrinks_with_count():
    narrow = summarize([1.0, 2.0] * 50)
    wide = summarize([1.0, 2.0])
    assert narrow.sem < wide.sem


def test_summarize_optional_ignores_none():
    s = summarize_optional([1.0, None, 3.0, None])
    assert s.count == 2
    assert s.mean == pytest.approx(2.0)


def test_format():
    text = summarize([1.0, 2.0]).format(precision=2)
    assert text == "1.50 ± 0.71 (n=2)"


def test_report_to_dict_roundtrips_through_json():
    report = run_scenario(
        ScenarioConfig(n_nodes=20, duration=80.0, seed=3, attack_start=30.0)
    )
    payload = report.to_dict()
    encoded = json.dumps(payload)
    decoded = json.loads(encoded)
    assert decoded["originated"] == report.originated
    assert decoded["wormhole_drops"] == report.wormhole_drops
    assert set(decoded["isolation_latencies"]) == {
        str(n) for n in report.isolation_times
    }
