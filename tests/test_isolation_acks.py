"""Acked ALERT dissemination with bounded retransmission.

With ``alert_retries > 0`` every alert recipient returns an authenticated
ack; the guard re-sends unacked alerts with exponential backoff and gives
up after the retry budget.
"""

from repro.core.agent import LiteworpAgent
from repro.core.config import LiteworpConfig
from repro.crypto.keys import PairwiseKeyManager
from repro.net.topology import grid_topology
from tests.conftest import Harness


def build(harness: Harness, config: LiteworpConfig):
    keys = PairwiseKeyManager()
    adjacency = harness.topology.adjacency()
    agents = {}
    for node_id in harness.topology.node_ids:
        agent = LiteworpAgent(
            harness.sim,
            harness.node(node_id),
            keys.enroll(node_id),
            config,
            harness.trace,
        )
        agent.install_oracle(adjacency)
        agents[node_id] = agent
    return agents


def test_acked_alerts_are_not_retransmitted():
    harness = Harness(grid_topology(columns=3, rows=3, spacing=10.0, tx_range=30.0))
    agents = build(harness, LiteworpConfig(alert_retries=2, alert_retry_timeout=0.5))
    guard, accused = 0, 4
    agents[guard].isolation.handle_local_detection(accused)
    harness.run(20.0)
    assert harness.trace.count("alert_sent") >= 1
    assert harness.trace.count("alert_ack_verified") >= 1
    assert harness.trace.count("alert_retransmit") == 0
    assert harness.trace.count("alert_abandoned") == 0
    assert agents[guard].isolation.alert_retransmits == 0


def test_unreachable_recipient_triggers_bounded_retries():
    harness = Harness(grid_topology(columns=3, rows=3, spacing=10.0, tx_range=30.0))
    agents = build(harness, LiteworpConfig(alert_retries=2, alert_retry_timeout=0.5))
    guard, accused, unreachable = 0, 4, 8
    # Sever the victim recipient completely so neither the direct alert
    # nor a relayed copy (nor any ack) can reach it.
    for other in harness.topology.node_ids:
        if other != unreachable:
            harness.network.channel.set_link_down(unreachable, other)
    agents[guard].isolation.handle_local_detection(accused)
    harness.run(30.0)
    retransmits = harness.trace.of_kind("alert_retransmit")
    assert [r for r in retransmits if r["recipient"] == unreachable]
    abandoned = harness.trace.of_kind("alert_abandoned")
    assert [r for r in abandoned if r["recipient"] == unreachable]
    # The retry budget bounds the attempts: initial send + 2 retries.
    assert (
        len([r for r in retransmits if r["recipient"] == unreachable]) <= 2
    )
    assert agents[guard].isolation.alert_retransmits >= 1


def test_retries_disabled_by_default():
    harness = Harness(grid_topology(columns=3, rows=3, spacing=10.0, tx_range=30.0))
    agents = build(harness, LiteworpConfig())
    agents[0].isolation.handle_local_detection(4)
    harness.run(20.0)
    assert harness.trace.count("alert_sent") >= 1
    assert harness.trace.count("alert_retransmit") == 0
    assert harness.trace.count("alert_ack_verified") == 0  # no acks requested


def test_redetection_does_not_duplicate_retry_timers():
    """A second detection of the same accused restarts the backoff ladder;
    the superseded deadline must not keep firing alongside the new one
    (which would multiply retransmissions past the retry budget)."""
    harness = Harness(grid_topology(columns=3, rows=3, spacing=10.0, tx_range=30.0))
    agents = build(harness, LiteworpConfig(alert_retries=2, alert_retry_timeout=0.5))
    guard, accused, unreachable = 0, 4, 8
    for other in harness.topology.node_ids:
        if other != unreachable:
            harness.network.channel.set_link_down(unreachable, other)
    agents[guard].isolation.handle_local_detection(accused)
    # Re-detection while the first attempt-0 deadline is still pending.
    harness.sim.schedule(0.2, agents[guard].isolation.handle_local_detection, accused)
    harness.run(30.0)
    retransmits = [
        r for r in harness.trace.of_kind("alert_retransmit")
        if r["recipient"] == unreachable
    ]
    # One ladder only: the retry budget caps attempts at alert_retries.
    assert len(retransmits) == 2
    assert [r["attempt"] for r in retransmits] == [1, 2]
    abandoned = [
        r for r in harness.trace.of_kind("alert_abandoned")
        if r["recipient"] == unreachable
    ]
    assert len(abandoned) == 1


def test_retry_stops_when_transmission_cannot_be_attempted():
    """When a retry finds no way to even transmit (the only relay was
    revoked), the guard reports the alert undeliverable once and stops
    instead of burning the remaining budget on impossible sends."""
    from repro.net.topology import Topology

    # Line 0 - 1 - 2 plus side node 9 adjacent to 0, 1, and 2: the only
    # route from guard 0 to recipient 2 that avoids the accused is via 9.
    base = grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0)
    positions = dict(base.positions)
    positions[9] = (25.0, 15.0)
    harness = Harness(Topology(positions=positions, tx_range=30.0))
    agents = build(harness, LiteworpConfig(alert_retries=2, alert_retry_timeout=0.5))
    # The relayed alert never reaches 2, so no ack comes back either.
    harness.network.channel.set_link_down(9, 2)
    agents[0].isolation.handle_local_detection(1)
    # Before the first retry deadline (t=0.5) the guard revokes its only
    # viable relay, leaving no path to attempt a retransmission on.
    harness.sim.schedule(0.3, agents[0].table.revoke, 9)
    harness.run(20.0)
    assert harness.trace.count("alert_retransmit", recipient=2) == 0
    assert harness.trace.count("alert_undeliverable", recipient=2) == 1
    assert harness.trace.count("alert_abandoned") == 0
