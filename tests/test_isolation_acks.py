"""Acked ALERT dissemination with bounded retransmission.

With ``alert_retries > 0`` every alert recipient returns an authenticated
ack; the guard re-sends unacked alerts with exponential backoff and gives
up after the retry budget.
"""

from repro.core.agent import LiteworpAgent
from repro.core.config import LiteworpConfig
from repro.crypto.keys import PairwiseKeyManager
from repro.net.topology import grid_topology
from tests.conftest import Harness


def build(harness: Harness, config: LiteworpConfig):
    keys = PairwiseKeyManager()
    adjacency = harness.topology.adjacency()
    agents = {}
    for node_id in harness.topology.node_ids:
        agent = LiteworpAgent(
            harness.sim,
            harness.node(node_id),
            keys.enroll(node_id),
            config,
            harness.trace,
        )
        agent.install_oracle(adjacency)
        agents[node_id] = agent
    return agents


def test_acked_alerts_are_not_retransmitted():
    harness = Harness(grid_topology(columns=3, rows=3, spacing=10.0, tx_range=30.0))
    agents = build(harness, LiteworpConfig(alert_retries=2, alert_retry_timeout=0.5))
    guard, accused = 0, 4
    agents[guard].isolation.handle_local_detection(accused)
    harness.run(20.0)
    assert harness.trace.count("alert_sent") >= 1
    assert harness.trace.count("alert_ack_verified") >= 1
    assert harness.trace.count("alert_retransmit") == 0
    assert harness.trace.count("alert_abandoned") == 0
    assert agents[guard].isolation.alert_retransmits == 0


def test_unreachable_recipient_triggers_bounded_retries():
    harness = Harness(grid_topology(columns=3, rows=3, spacing=10.0, tx_range=30.0))
    agents = build(harness, LiteworpConfig(alert_retries=2, alert_retry_timeout=0.5))
    guard, accused, unreachable = 0, 4, 8
    # Sever the victim recipient completely so neither the direct alert
    # nor a relayed copy (nor any ack) can reach it.
    for other in harness.topology.node_ids:
        if other != unreachable:
            harness.network.channel.set_link_down(unreachable, other)
    agents[guard].isolation.handle_local_detection(accused)
    harness.run(30.0)
    retransmits = harness.trace.of_kind("alert_retransmit")
    assert [r for r in retransmits if r["recipient"] == unreachable]
    abandoned = harness.trace.of_kind("alert_abandoned")
    assert [r for r in abandoned if r["recipient"] == unreachable]
    # The retry budget bounds the attempts: initial send + 2 retries.
    assert (
        len([r for r in retransmits if r["recipient"] == unreachable]) <= 2
    )
    assert agents[guard].isolation.alert_retransmits >= 1


def test_retries_disabled_by_default():
    harness = Harness(grid_topology(columns=3, rows=3, spacing=10.0, tx_range=30.0))
    agents = build(harness, LiteworpConfig())
    agents[0].isolation.handle_local_detection(4)
    harness.run(20.0)
    assert harness.trace.count("alert_sent") >= 1
    assert harness.trace.count("alert_retransmit") == 0
    assert harness.trace.count("alert_ack_verified") == 0  # no acks requested
