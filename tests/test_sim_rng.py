"""Unit tests for named RNG streams."""

from repro.sim.rng import RngRegistry


def test_same_name_returns_same_stream():
    reg = RngRegistry(seed=1)
    assert reg.stream("traffic") is reg.stream("traffic")


def test_different_names_are_independent_objects():
    reg = RngRegistry(seed=1)
    assert reg.stream("a") is not reg.stream("b")


def test_streams_are_deterministic_across_registries():
    values_a = [RngRegistry(seed=5).stream("x").random() for _ in range(3)]
    values_b = [RngRegistry(seed=5).stream("x").random() for _ in range(3)]
    assert values_a == values_b


def test_different_seeds_give_different_sequences():
    a = RngRegistry(seed=1).stream("x")
    b = RngRegistry(seed=2).stream("x")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_names_give_different_sequences():
    reg = RngRegistry(seed=1)
    a = reg.stream("alpha")
    b = reg.stream("beta")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_consuming_one_stream_does_not_shift_another():
    reg1 = RngRegistry(seed=9)
    reg1.stream("noise").random()  # consume from an unrelated stream
    value_after_noise = reg1.stream("signal").random()

    reg2 = RngRegistry(seed=9)
    value_clean = reg2.stream("signal").random()
    assert value_after_noise == value_clean


def test_fork_changes_all_streams():
    base = RngRegistry(seed=3)
    forked = base.fork(run_index=1)
    assert base.stream("x").random() != forked.stream("x").random()


def test_fork_is_deterministic():
    a = RngRegistry(seed=3).fork(2).stream("x").random()
    b = RngRegistry(seed=3).fork(2).stream("x").random()
    assert a == b


def test_seed_property():
    assert RngRegistry(seed=17).seed == 17
