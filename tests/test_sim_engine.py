"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(3.0, fired.append, "last")
    sim.run()
    assert fired == ["early", "late", "last"]


def test_ties_fire_in_fifo_order():
    sim = Simulator()
    fired = []
    for tag in ("a", "b", "c"):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]
    assert sim.now == 1.5


def test_run_until_is_inclusive():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "at-horizon")
    sim.schedule(2.0001, fired.append, "after-horizon")
    sim.run(until=2.0)
    assert fired == ["at-horizon"]
    assert sim.now == 2.0


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_events_after_horizon_survive_for_next_run():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "later")
    sim.run(until=1.0)
    assert fired == []
    sim.run(until=10.0)
    assert fired == ["later"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "nope")
    event.cancel()
    sim.run()
    assert fired == []
    assert event.cancelled
    assert not event.fired


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert event.cancelled


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.run()
    event.cancel()
    assert event.fired
    assert not event.cancelled


def test_events_can_schedule_more_events():
    sim = Simulator()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            sim.schedule(1.0, chain, depth + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_nonfinite_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("inf"), lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_run_until_in_past_rejected():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_step_runs_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step()
    assert fired == ["a"]
    assert sim.step()
    assert fired == ["a", "b"]
    assert not sim.step()


def test_step_skips_cancelled():
    sim = Simulator()
    fired = []
    first = sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    first.cancel()
    assert sim.step()
    assert fired == ["b"]


def test_peek_time_skips_cancelled():
    sim = Simulator()
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    first.cancel()
    assert sim.peek_time() == 2.0


def test_peek_time_empty_queue():
    sim = Simulator()
    assert sim.peek_time() is None


def test_max_events_stops_early():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=2)
    assert fired == [0, 1]


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_pending_count_reflects_cancellations():
    sim = Simulator()
    events = [sim.schedule(1.0, lambda: None) for _ in range(3)]
    events[0].cancel()
    assert sim.pending_count == 2


def test_kwargs_passed_to_callback():
    sim = Simulator()
    seen = {}
    sim.schedule(1.0, lambda **kw: seen.update(kw), x=1, y="two")
    sim.run()
    assert seen == {"x": 1, "y": "two"}


def test_start_time_offset():
    sim = Simulator(start_time=100.0)
    assert sim.now == 100.0
    fired = []
    sim.schedule(1.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [101.0]
