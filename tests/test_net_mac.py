"""Unit tests for the CSMA MAC: queueing, carrier sense, backoff, ARQ."""

import random

import pytest

from repro.net.channel import Channel
from repro.net.mac import CsmaMac, MacConfig
from repro.net.packet import DataPacket, Frame
from repro.net.radio import UnitDiskRadio
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog


def build(positions, mac_config=None):
    sim = Simulator()
    radio = UnitDiskRadio(positions, default_range=30.0)
    trace = TraceLog()
    channel = Channel(sim, radio, RngRegistry(0), trace=trace)
    inboxes = {node: [] for node in positions}
    macs = {}
    for node in positions:
        channel.attach(node, inboxes[node].append)
        macs[node] = CsmaMac(
            sim, channel, node, random.Random(node),
            config=mac_config or MacConfig(), trace=trace,
        )
    return sim, channel, macs, inboxes, trace


def frame(tx, dst=None):
    return Frame(packet=DataPacket(origin=tx, destination=dst or 99), transmitter=tx, link_dst=dst)


def test_send_delivers_frame():
    sim, channel, macs, inboxes, _ = build({0: (0, 0), 1: (10, 0)})
    macs[0].send(frame(0), jitter=0.0)
    sim.run()
    assert len(inboxes[1]) == 1
    assert macs[0].sent == 1


def test_queue_drains_in_order():
    sim, channel, macs, inboxes, _ = build({0: (0, 0), 1: (10, 0)})
    for seq in range(3):
        f = Frame(packet=DataPacket(origin=0, destination=9, sequence=seq), transmitter=0)
        macs[0].send(f, jitter=0.0)
    sim.run()
    sequences = [fr.packet.sequence for fr in inboxes[1]]
    assert sequences == [0, 1, 2]


def test_carrier_sense_defers_second_sender():
    """Two in-range senders never overlap: CSMA serialises them."""
    sim, channel, macs, inboxes, _ = build({0: (0, 0), 1: (10, 0), 2: (20, 0)})
    macs[0].send(frame(0), jitter=0.0)
    macs[1].send(frame(1), jitter=0.0)
    sim.run()
    # Node 2 hears both (no collision thanks to deferral).
    assert len(inboxes[2]) == 2


def test_mac_gives_up_after_max_attempts():
    config = MacConfig(max_attempts=2, base_backoff=0.001)
    sim, channel, macs, inboxes, trace = build({0: (0, 0), 1: (10, 0)}, config)
    # Keep the channel busy with a long foreign transmission.
    blocker = Frame(packet=DataPacket(origin=1, destination=9, payload_size=20_000), transmitter=1)
    channel.transmit(1, blocker)
    macs[0].send(frame(0), jitter=0.0)
    sim.run()
    assert macs[0].dropped == 1
    assert trace.count("mac_drop", node=0) == 1


def test_jitter_delays_transmission():
    sim, channel, macs, inboxes, _ = build({0: (0, 0), 1: (10, 0)})
    macs[0].send(frame(0), jitter=5.0)
    sim.run(until=0.001)
    assert inboxes[1] == []  # still waiting out the jitter
    sim.run(until=10.0)
    assert len(inboxes[1]) == 1


def test_zero_jitter_transmits_immediately():
    sim, channel, macs, inboxes, _ = build({0: (0, 0), 1: (10, 0)})
    macs[0].send(frame(0), jitter=0.0)
    assert sim.peek_time() == 0.0  # attempt scheduled at t=0


def test_arq_retransmits_until_delivered():
    """A unicast that collides on the first try is retried and delivered."""
    config = MacConfig(arq_retries=3, base_backoff=0.002)
    positions = {0: (0, 0), 1: (30, 0), 2: (60, 0)}
    sim, channel, macs, inboxes, _ = build(positions, config)
    # A hidden-terminal transmission from node 2 collides with attempt 1.
    channel.transmit(2, frame(2))
    macs[0].send(frame(0, dst=1), jitter=0.0)
    sim.run()
    delivered = [fr for fr in inboxes[1] if fr.transmitter == 0]
    assert len(delivered) == 1
    assert macs[0].sent >= 2  # at least one retransmission happened


def test_arq_gives_up_when_destination_unreachable():
    config = MacConfig(arq_retries=2)
    sim, channel, macs, _, trace = build({0: (0, 0), 1: (100, 0)}, config)
    macs[0].send(frame(0, dst=1), jitter=0.0)
    sim.run()
    assert macs[0].arq_failures == 1
    assert macs[0].sent == 3  # initial + 2 retries
    assert trace.count("arq_failure", node=0) == 1


def test_arq_disabled_means_single_attempt():
    config = MacConfig(arq_retries=0)
    sim, channel, macs, _, _ = build({0: (0, 0), 1: (100, 0)}, config)
    macs[0].send(frame(0, dst=1), jitter=0.0)
    sim.run()
    assert macs[0].sent == 1


def test_broadcast_never_retransmitted():
    config = MacConfig(arq_retries=3)
    positions = {0: (0, 0), 1: (30, 0), 2: (60, 0)}
    sim, channel, macs, inboxes, _ = build(positions, config)
    channel.transmit(2, frame(2))  # collides at node 1
    macs[0].send(frame(0), jitter=0.0)  # broadcast
    sim.run()
    assert macs[0].sent == 1


def test_queue_length_property():
    sim, channel, macs, _, _ = build({0: (0, 0), 1: (10, 0)})
    macs[0].send(frame(0), jitter=1.0)
    macs[0].send(frame(0), jitter=1.0)
    assert macs[0].queue_length == 2


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        MacConfig(base_backoff=0)
    with pytest.raises(ValueError):
        MacConfig(max_attempts=0)
    with pytest.raises(ValueError):
        MacConfig(default_jitter=-1)
    with pytest.raises(ValueError):
        MacConfig(arq_retries=-1)
