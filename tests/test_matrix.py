"""Matrix campaigns: spec compilation, execution, resume byte-identity.

The matrix rides the campaign orchestrator — these tests pin the parts
the matrix adds on top: per-attack malicious-count co-variation, journal
layout, cell aggregation through the *plugin's* detection verdict, and
the interrupt/resume → byte-identical-report guarantee the CI smoke job
re-checks end to end.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.campaign import CampaignError
from repro.experiments.matrix import (
    DEFAULT_MATRIX_ATTACKS,
    MatrixSpec,
    aggregate_matrix,
    attack_malicious,
    run_matrix,
)
from repro.experiments.scenario import ScenarioConfig
from repro.obs.report import MatrixReport


def _small_spec(**overrides):
    defaults = dict(
        name="testmatrix",
        base=ScenarioConfig(n_nodes=16, duration=40.0, seed=3, attack_start=10.0),
        defenses=("none", "liteworp"),
        attacks=("outofband", "relay"),
        runs=1,
    )
    defaults.update(overrides)
    return MatrixSpec(**defaults)


# ----------------------------------------------------------------------
# Spec compilation
# ----------------------------------------------------------------------
def test_attack_malicious_covaries_with_mode():
    assert attack_malicious("none") == 0
    assert attack_malicious("outofband") == 2
    assert attack_malicious("encapsulation", colluders=3) == 3
    assert attack_malicious("highpower") == 1
    assert attack_malicious("relay") == 1
    assert attack_malicious("rushing") == 1


def test_default_defenses_are_every_registered_one():
    from repro.defenses import available_defenses

    spec = MatrixSpec()
    assert spec.defenses == available_defenses()
    assert spec.attacks == DEFAULT_MATRIX_ATTACKS


def test_campaign_per_attack_pins_mode_and_malicious_count():
    spec = _small_spec(attacks=("none", "outofband", "relay"))
    for attack in spec.attacks:
        campaign = spec.campaign_for(attack)
        assert campaign.name == f"testmatrix-{attack}"
        assert campaign.base.attack_mode == attack
        assert campaign.base.n_malicious == attack_malicious(attack)
        assert campaign.axes_dict() == {"defense": ("none", "liteworp")}


def test_spec_validation():
    with pytest.raises(CampaignError, match="unknown attack mode"):
        _small_spec(attacks=("teleport",))
    with pytest.raises(CampaignError, match="unknown defense"):
        _small_spec(defenses=("prayer",))
    with pytest.raises(CampaignError, match="duplicate"):
        _small_spec(attacks=("relay", "relay"))
    with pytest.raises(CampaignError, match="runs"):
        _small_spec(runs=0)
    with pytest.raises(CampaignError, match="colluders"):
        _small_spec(colluders=1)
    with pytest.raises(CampaignError, match="attack 'rushing'"):
        _small_spec().campaign_for("rushing")


def test_total_jobs():
    assert _small_spec(runs=3).total_jobs() == 2 * 2 * 3


# ----------------------------------------------------------------------
# Execution + aggregation
# ----------------------------------------------------------------------
def test_matrix_end_to_end(tmp_path):
    spec = _small_spec()
    result = run_matrix(spec, journal_dir=tmp_path)
    assert result.complete
    assert result.executed == spec.total_jobs()
    assert isinstance(result.report, MatrixReport)
    # One journal per attack mode.
    for attack in spec.attacks:
        assert spec.journal_for(attack, tmp_path).exists()

    payload = result.report.payload
    assert payload["attacks"] == list(spec.attacks)
    assert payload["defenses"] == list(spec.defenses)
    assert len(payload["cells"]) == len(spec.attacks) * len(spec.defenses)
    for entry in payload["cells"]:
        metrics = entry["metrics"]
        assert metrics["runs"] == spec.runs
        assert 0.0 <= metrics["detection_rate"] <= 1.0
        assert 0.0 <= metrics["delivery_fraction"] <= 1.0

    # LITEWORP catches the out-of-band tunnel; the null defense never
    # alarms anywhere.
    assert result.report.cell("outofband", "liteworp")["detection_rate"] == 1.0
    for attack in spec.attacks:
        assert result.report.cell(attack, "none")["detection_rate"] == 0.0

    markdown = result.report.to_markdown()
    assert "## Detection rate" in markdown
    assert "| liteworp |" in markdown
    json.loads(result.report.to_json())  # payload is valid JSON


def test_matrix_interrupt_resume_byte_identity(tmp_path):
    spec = _small_spec()
    straight = run_matrix(spec, journal_dir=tmp_path / "straight")

    chopped_dir = tmp_path / "chopped"
    partial = run_matrix(spec, journal_dir=chopped_dir, max_jobs=1)
    assert not partial.complete
    assert partial.report is None
    assert partial.executed == 1

    resumed = run_matrix(spec, journal_dir=chopped_dir, resume=True)
    assert resumed.complete
    assert resumed.executed == spec.total_jobs() - 1
    assert resumed.report.to_json() == straight.report.to_json()


def test_aggregate_requires_complete_journals(tmp_path):
    spec = _small_spec()
    with pytest.raises(CampaignError, match="no complete journal"):
        aggregate_matrix(spec, tmp_path)
    run_matrix(spec, journal_dir=tmp_path, max_jobs=1)
    with pytest.raises(CampaignError, match="missing job"):
        aggregate_matrix(spec, tmp_path)


def test_matrix_stop_callable_interrupts(tmp_path):
    spec = _small_spec()
    calls = {"n": 0}

    def stop():
        calls["n"] += 1
        return calls["n"] > 2

    result = run_matrix(spec, journal_dir=tmp_path, stop=stop)
    assert not result.complete
    assert result.report is None


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_matrix_runs_and_resumes(tmp_path, capsys):
    from repro.cli import main

    journal_dir = str(tmp_path / "journals")
    out_path = tmp_path / "matrix.json"
    base_args = [
        "matrix", "--name", "climatrix",
        "--defense", "none", "--defense", "snd",
        "--attack", "relay", "--attack", "outofband",
        "--nodes", "16", "--duration", "40", "--attack-start", "10",
        "--runs", "1", "--journal-dir", journal_dir, "--no-cache",
        "--no-fsync", "--quiet",
    ]
    # Budget-limited first leg stops with the resumable exit code.
    assert main(base_args + ["--max-jobs", "1"]) == 75
    capsys.readouterr()
    # Resume finishes and renders the matrix.
    assert main(base_args + ["--resume", "--out", str(out_path)]) == 0
    captured = capsys.readouterr()
    assert "# Defense × attack matrix: climatrix" in captured.out
    payload = json.loads(out_path.read_text())
    assert payload["defenses"] == ["none", "snd"]
    assert len(payload["cells"]) == 4
