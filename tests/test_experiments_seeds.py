"""Replication seed derivation: new hash scheme + legacy compat shim."""

import pytest

from repro.experiments.seeds import child_seed, legacy_child_seed


def test_legacy_scheme_pinned():
    """The historical scheme, pinned exactly as it behaved in-tree."""
    assert legacy_child_seed(4, 0) == 4
    assert legacy_child_seed(4, 3) == 3004
    assert legacy_child_seed(8, 29) == 29008


def test_legacy_scheme_collides_across_sweep_points():
    """The defect that motivated the change: replication 1 of seed 4 was
    the same run as replication 0 of seed 1004."""
    assert legacy_child_seed(4, 1) == legacy_child_seed(1004, 0)


def test_index_zero_is_base_seed():
    """A single replication is literally the base config's run — this is
    what keeps runs=1 figure output identical across the scheme change."""
    for seed in (0, 1, 4, 1004, 123456789):
        assert child_seed(seed, 0) == seed


def test_new_scheme_pinned_values():
    """Derived seeds are part of every cached result's identity: pin them
    so an accidental derivation change cannot silently invalidate (or
    worse, silently *reuse*) cache entries and recorded experiments."""
    assert child_seed(1, 1) == 6884152123329735806
    assert child_seed(1, 2) == 1317639490206132003
    assert child_seed(4, 1) == 4576957610927946634
    assert child_seed(8, 29) == 5813733600498332172


def test_new_scheme_resolves_legacy_collision():
    assert child_seed(4, 1) != child_seed(1004, 0)


def test_new_scheme_no_collisions_over_grid():
    """No collisions across a seed x index grid that would have collided
    heavily under the legacy scheme."""
    seen = set()
    for base in (1, 4, 1001, 1004, 2001, 2004):
        for index in range(50):
            seen.add(child_seed(base, index))
    assert len(seen) == 6 * 50


def test_seeds_fit_json_safe_range():
    for base in (1, 2**40):
        for index in range(10):
            derived = child_seed(base, index)
            assert 0 <= derived < 2**63


def test_negative_index_rejected():
    with pytest.raises(ValueError):
        child_seed(1, -1)
