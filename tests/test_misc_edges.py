"""Targeted edge-case tests for paths not covered elsewhere."""

import pytest

from repro.baselines.leashes import LeashAgent, LeashConfig
from repro.experiments.figures import _sample_times
from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.net.packet import DataPacket, Frame, RouteReply
from repro.net.topology import grid_topology
from tests.conftest import Harness


# ----------------------------------------------------------------------
# Channel frame stamper
# ----------------------------------------------------------------------
def test_channel_stamper_rewrites_frames():
    harness = Harness(grid_topology(columns=2, rows=1, spacing=10.0, tx_range=30.0))
    stamped = []

    def stamper(frame):
        new = Frame(packet=frame.packet, transmitter=frame.transmitter,
                    link_dst=frame.link_dst, prev_hop=99)
        stamped.append(new)
        return new

    harness.network.channel.set_frame_stamper(0, stamper)
    seen = []
    harness.node(1).add_listener(seen.append)
    harness.node(0).broadcast(DataPacket(origin=0, destination=1), jitter=0.0)
    harness.run(1.0)
    assert len(stamped) == 1
    assert seen[0].prev_hop == 99


def test_stamper_applies_at_transmission_not_submission():
    """The stamp happens after MAC queueing: a leash's send time is the
    real air time."""
    harness = Harness(grid_topology(columns=2, rows=1, spacing=10.0, tx_range=30.0))
    config = LeashConfig(comm_range=30.0)
    agent = LeashAgent(
        harness.sim, harness.node(0), harness.network.radio, config,
        harness.trace, verify_incoming=False,
    )
    harness.network.channel.set_frame_stamper(0, agent.stamp)
    seen = []
    harness.node(1).add_listener(seen.append)
    # Queue with a long jitter: submission at t=0, transmission at ~2 s.
    harness.node(0).broadcast(DataPacket(origin=0, destination=1), jitter=2.0)
    harness.run(5.0)
    assert len(seen) == 1
    assert seen[0].leash.sent_at > 0.0


# ----------------------------------------------------------------------
# Figure helpers
# ----------------------------------------------------------------------
def test_sample_times_covers_horizon():
    times = _sample_times(100.0, 30.0)
    assert times == [30.0, 60.0, 90.0, 100.0]


def test_sample_times_exact_multiple():
    times = _sample_times(90.0, 30.0)
    assert times == [30.0, 60.0, 90.0]


def test_sample_times_short_duration():
    assert _sample_times(10.0, 30.0) == [10.0]


# ----------------------------------------------------------------------
# Temporal-leash scenario wiring
# ----------------------------------------------------------------------
def test_temporal_leash_defense_builds_and_runs():
    config = ScenarioConfig(
        n_nodes=20, duration=80.0, seed=3, attack_mode="none", n_malicious=0,
        defense="temporal_leash",
    )
    scenario = build_scenario(config)
    report = scenario.run()
    assert scenario.leash_agents
    for agent in scenario.leash_agents.values():
        assert agent.config.kind == "temporal"
    # The network still functions under temporal leashes.
    assert report.delivered > 0


def test_removed_legacy_flag_raises_pointed_error():
    # The pre-registry boolean is gone: any spelling fails at
    # construction with a message pointing at defense=.
    for value in (True, False):
        with pytest.raises(ValueError, match="defense='liteworp'"):
            ScenarioConfig(n_nodes=20, liteworp_enabled=value)
    with pytest.raises(ValueError, match="liteworp_enabled was removed"):
        ScenarioConfig(n_nodes=20, liteworp_enabled=False, defense="geo_leash")


def test_unknown_defense_rejected():
    with pytest.raises(ValueError):
        ScenarioConfig(defense="prayer")


# ----------------------------------------------------------------------
# Reply handling edge: duplicate REP after route installed
# ----------------------------------------------------------------------
def test_duplicate_reply_reinstalls_route_without_error():
    from repro.routing.config import RoutingConfig
    from repro.routing.ondemand import OnDemandRouting

    harness = Harness(grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0))
    routers = {
        n: OnDemandRouting(harness.sim, harness.node(n), RoutingConfig(),
                           harness.trace, harness.rng.stream(f"r{n}"))
        for n in harness.topology.node_ids
    }
    routers[0].send_data(2)
    harness.run(10.0)
    assert harness.trace.count("route_established", origin=0) == 1
    # A duplicate REP arrives (e.g. a late retransmission).
    rep = RouteReply(origin=0, request_id=1, target=2, hop_count=2, path=(0, 1, 2))
    routers[0]._on_reply(Frame(packet=rep, transmitter=1, link_dst=0), rep)  # noqa: SLF001
    assert harness.trace.count("route_established", origin=0) == 2
    assert routers[0].has_route(2)


# ----------------------------------------------------------------------
# Relay alert forwarding refuses revoked recipients
# ----------------------------------------------------------------------
def test_alert_relay_skips_revoked_recipient():
    from repro.core.agent import LiteworpAgent
    from repro.core.config import LiteworpConfig
    from repro.crypto.auth import Authenticator
    from repro.crypto.keys import PairwiseKeyManager
    from repro.net.packet import AlertPacket

    harness = Harness(grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0))
    keys = PairwiseKeyManager()
    adjacency = harness.topology.adjacency()
    agents = {}
    for node_id in harness.topology.node_ids:
        agent = LiteworpAgent(
            harness.sim, harness.node(node_id), keys.enroll(node_id),
            LiteworpConfig(theta=1), harness.trace,
        )
        agent.install_oracle(adjacency)
        agents[node_id] = agent
    # Node 1 (the relay) has revoked node 2 and will not forward to it.
    agents[1].table.revoke(2)
    key = keys.pairwise_key(0, 2)
    alert = AlertPacket(
        guard=0, accused=1, recipient=2,
        auth=Authenticator.tag(key, "alert", 0, 1, 2),
        relay_via=1,
    )
    harness.node(0).unicast(alert, next_hop=1, jitter=0.0)
    harness.run(5.0)
    assert agents[2].table.alert_count(1) == 0
