"""Unit tests for routing configuration validation."""

import pytest

from repro.routing.config import RoutingConfig


def test_defaults_valid():
    config = RoutingConfig()
    assert config.metric == "shortest"
    assert config.route_timeout == 50.0  # Table 2 TOut_Route


def test_first_metric_allowed():
    assert RoutingConfig(metric="first").metric == "first"


def test_unknown_metric_rejected():
    with pytest.raises(ValueError):
        RoutingConfig(metric="fastest")


@pytest.mark.parametrize(
    "kwargs",
    [
        {"reply_window": -0.1},
        {"route_timeout": 0},
        {"request_timeout": 0},
        {"max_retries": 0},
        {"queue_capacity": 0},
        {"forward_jitter": -1},
        {"suppression_threshold": -1},
    ],
)
def test_invalid_values_rejected(kwargs):
    with pytest.raises(ValueError):
        RoutingConfig(**kwargs)
