"""Shared fixtures and mini-harness helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.net.network import Network, NetworkConfig
from repro.net.topology import Topology, grid_topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog


class Harness:
    """A tiny wired network for protocol-level tests.

    Builds sim + trace + network over a deterministic topology so tests can
    attach agents by hand without the full scenario machinery.
    """

    def __init__(self, topology: Topology, seed: int = 0, **net_kwargs) -> None:
        self.sim = Simulator()
        self.rng = RngRegistry(seed=seed)
        self.trace = TraceLog()
        self.topology = topology
        self.network = Network(
            self.sim,
            topology,
            self.rng,
            trace=self.trace,
            config=NetworkConfig(**net_kwargs) if net_kwargs else None,
        )

    def node(self, node_id):
        return self.network.node(node_id)

    def run(self, until: float) -> None:
        self.sim.run(until=until)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def trace() -> TraceLog:
    return TraceLog()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(42)


@pytest.fixture
def line5() -> Harness:
    """Five nodes in a line: 0-1-2-3-4, only adjacent pairs in range."""
    return Harness(grid_topology(columns=5, rows=1, spacing=25.0, tx_range=30.0))


@pytest.fixture
def grid33() -> Harness:
    """3x3 grid, spacing 25 m, range 30 m (4-connected neighbors)."""
    return Harness(grid_topology(columns=3, rows=3, spacing=25.0, tx_range=30.0))


@pytest.fixture
def dense9() -> Harness:
    """3x3 grid, spacing 10 m, range 30 m: nodes within 30 m see each other
    (diagonal of two cells = 28.3 m in range; full diameter 28.3 too) —
    effectively a clique."""
    return Harness(grid_topology(columns=3, rows=3, spacing=10.0, tx_range=30.0))
