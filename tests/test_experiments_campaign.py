"""Tests for the campaign orchestrator: spec loading, compilation,
journaling, resume byte-identity, backends, and retry."""

import json

import pytest

from repro.experiments.cache import ResultCache, config_digest
from repro.experiments.campaign import (
    CampaignError,
    CampaignJournal,
    CampaignRunner,
    CampaignSpec,
    InlineBackend,
    ProcessBackend,
    RetryPolicy,
    SupervisionPolicy,
    ThreadBackend,
    apply_overrides,
    compile_campaign,
    load_journal,
    load_spec,
    make_backend,
    run_campaign,
)
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.obs.progress import CampaignProgress


def tiny_spec(name="tiny", runs=2, **base_overrides):
    base = ScenarioConfig(
        n_nodes=16, duration=30.0, seed=4, attack_start=10.0, **base_overrides
    )
    return CampaignSpec(
        name=name,
        base=base,
        axes=(("n_malicious", (0, 2)),),
        runs=runs,
    )


# ----------------------------------------------------------------------
# Overrides + spec
# ----------------------------------------------------------------------
def test_apply_overrides_top_level_and_dotted():
    config = ScenarioConfig(n_nodes=20)
    out = apply_overrides(config, {"n_malicious": 2, "liteworp.theta": 4})
    assert out.n_malicious == 2
    assert out.liteworp.theta == 4
    # Untouched fields survive, the input is not mutated.
    assert out.n_nodes == 20
    assert config.liteworp.theta != 4 or config.n_malicious == 0


def test_apply_overrides_rejects_unknown_field():
    with pytest.raises(CampaignError, match="no_such_field"):
        apply_overrides(ScenarioConfig(), {"no_such_field": 1})
    with pytest.raises(CampaignError, match="nested"):
        apply_overrides(ScenarioConfig(), {"liteworp.nested": 1})


def test_spec_axes_sorted_and_points_are_cartesian():
    spec = CampaignSpec(
        name="grid",
        axes=(("seed", (1, 2)), ("n_malicious", (0, 2, 4))),
        runs=1,
    )
    assert [axis for axis, _ in spec.axes] == ["n_malicious", "seed"]
    points = spec.points()
    assert len(points) == 6
    assert points[0] == (("n_malicious", 0), ("seed", 1))


def test_spec_validation():
    with pytest.raises(CampaignError):
        CampaignSpec(name="")
    with pytest.raises(CampaignError):
        CampaignSpec(name="x", runs=0)
    with pytest.raises(CampaignError):
        CampaignSpec(name="x", axes=(("n_malicious", ()),))


def test_spec_from_dict_rejects_unknown_keys():
    with pytest.raises(CampaignError, match="bogus"):
        CampaignSpec.from_dict({"name": "x", "bogus": 1})
    with pytest.raises(CampaignError, match="name"):
        CampaignSpec.from_dict({"runs": 1})


def test_load_spec_toml_and_json_agree(tmp_path):
    toml_path = tmp_path / "study.toml"
    toml_path.write_text(
        'name = "study"\n'
        "runs = 2\n"
        "[base]\n"
        "n_nodes = 16\n"
        "duration = 30.0\n"
        "attack_start = 10.0\n"
        '"liteworp.theta" = 4\n'
        "[axes]\n"
        "n_malicious = [0, 2]\n"
    )
    json_path = tmp_path / "study.json"
    json_path.write_text(json.dumps({
        "name": "study",
        "runs": 2,
        "base": {"n_nodes": 16, "duration": 30.0, "attack_start": 10.0,
                 "liteworp.theta": 4},
        "axes": {"n_malicious": [0, 2]},
    }))
    from_toml = load_spec(toml_path)
    from_json = load_spec(json_path)
    assert from_toml == from_json
    assert from_toml.digest() == from_json.digest()
    assert from_toml.base.liteworp.theta == 4


def test_load_spec_bad_file(tmp_path):
    missing = tmp_path / "nope.toml"
    with pytest.raises(CampaignError, match="cannot read"):
        load_spec(missing)
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(CampaignError, match="invalid JSON"):
        load_spec(bad)


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def test_compile_is_deterministic_and_content_addressed():
    spec = tiny_spec()
    jobs_a = compile_campaign(spec)
    jobs_b = compile_campaign(spec)
    assert [j.digest for j in jobs_a] == [j.digest for j in jobs_b]
    assert len(jobs_a) == 2 * spec.runs
    # Replication 0 keeps the base seed; later replications derive new ones.
    by_rep = {(j.point, j.replication): j for j in jobs_a}
    assert by_rep[(("n_malicious", 0),), 0].config.seed == spec.base.seed
    assert by_rep[(("n_malicious", 0),), 1].config.seed != spec.base.seed
    for job in jobs_a:
        assert job.digest == config_digest(job.config)


def test_compile_rejects_invalid_point_value():
    spec = CampaignSpec(
        name="bad", base=ScenarioConfig(n_nodes=16), axes=(("defense", ("prayer",)),)
    )
    with pytest.raises(CampaignError, match="invalid sweep point"):
        compile_campaign(spec)


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
def test_journal_roundtrip(tmp_path):
    spec = tiny_spec(runs=1)
    jobs = compile_campaign(spec)
    report = run_scenario(jobs[0].config)
    path = tmp_path / "j.jsonl"
    with CampaignJournal(path) as journal:
        journal.begin(spec, total_jobs=len(jobs))
        journal.record(jobs[0], report)
    state = load_journal(path)
    assert state.spec_digest == spec.digest()
    assert state.total_jobs == len(jobs)
    assert len(state) == 1
    loaded = state.reports[jobs[0].digest]
    assert loaded.to_state() == report.to_state()


def test_journal_tolerates_truncated_final_line(tmp_path):
    spec = tiny_spec(runs=1)
    jobs = compile_campaign(spec)
    report = run_scenario(jobs[0].config)
    path = tmp_path / "j.jsonl"
    with CampaignJournal(path) as journal:
        journal.begin(spec, total_jobs=len(jobs))
        journal.record(jobs[0], report)
    # Simulate a writer killed mid-append: chop the final line in half.
    text = path.read_text()
    path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
    state = load_journal(path, tolerate_partial=True)
    assert state.partial_lines == 1
    assert len(state) == 0
    with pytest.raises(CampaignError, match="corrupt"):
        load_journal(path, tolerate_partial=False)


def test_journal_rejects_midfile_corruption_and_bad_version(tmp_path):
    path = tmp_path / "j.jsonl"
    path.write_text("garbage\n" + json.dumps({"event": "begin"}) + "\n")
    with pytest.raises(CampaignError, match="corrupt"):
        load_journal(path)
    path.write_text(json.dumps({"event": "begin", "version": 99}) + "\n")
    with pytest.raises(CampaignError, match="version"):
        load_journal(path)
    path.write_text(json.dumps({"event": "mystery"}) + "\n")
    with pytest.raises(CampaignError, match="unknown journal event"):
        load_journal(path)


# ----------------------------------------------------------------------
# Resume byte-identity (the acceptance criterion)
# ----------------------------------------------------------------------
class _RecordingWorker:
    """Picklable worker spy: appends each executed digest to a file (so it
    also observes jobs run inside process-pool workers)."""

    def __init__(self, log_path):
        self.log_path = str(log_path)

    def __call__(self, config):
        with open(self.log_path, "a", encoding="utf-8") as handle:
            handle.write(config_digest(config) + "\n")
        return run_scenario(config)



@pytest.mark.parametrize("backend_name", ["inline", "process"])
def test_interrupted_campaign_resumes_byte_identical(tmp_path, backend_name):
    spec = tiny_spec(runs=2)

    baseline = run_campaign(
        spec, backend=make_backend(backend_name, jobs=2),
        journal=tmp_path / "full.jsonl",
    )
    assert baseline.complete and baseline.executed == 4

    # Interrupt after 3 of 4 jobs, then resume the rest.
    journal = tmp_path / "interrupted.jsonl"
    first = run_campaign(
        spec, backend=make_backend(backend_name, jobs=2),
        journal=journal, max_jobs=3,
    )
    assert not first.complete
    assert first.executed == 3
    assert first.aggregate is None
    journaled_before_resume = set(load_journal(journal).reports)
    assert len(journaled_before_resume) == 3

    call_log = tmp_path / "calls.log"
    resumed = CampaignRunner(
        spec, make_backend(backend_name, jobs=2),
        journal_path=journal, resume=True, worker=_RecordingWorker(call_log),
    ).run()
    calls = call_log.read_text().split()
    assert resumed.complete
    assert resumed.from_journal == 3
    assert resumed.executed == 1
    # Exactly the one unjournaled job ran; no completed job ran again.
    assert len(calls) == 1
    assert calls[0] not in journaled_before_resume

    a = json.dumps(baseline.aggregate, sort_keys=True)
    b = json.dumps(resumed.aggregate, sort_keys=True)
    assert a == b


def test_resume_with_complete_journal_runs_nothing(tmp_path):
    spec = tiny_spec(runs=1)
    journal = tmp_path / "j.jsonl"
    full = run_campaign(spec, journal=journal)
    assert full.complete

    def exploding_worker(config):
        raise AssertionError("no job should execute on a finished journal")

    replay = CampaignRunner(
        spec, journal_path=journal, resume=True, worker=exploding_worker
    ).run()
    assert replay.executed == 0
    assert replay.from_journal == replay.total_jobs
    assert json.dumps(replay.aggregate, sort_keys=True) == json.dumps(
        full.aggregate, sort_keys=True
    )


def test_resume_rejects_spec_mismatch(tmp_path):
    journal = tmp_path / "j.jsonl"
    run_campaign(tiny_spec(name="alpha"), journal=journal, max_jobs=1)
    with pytest.raises(CampaignError, match="different campaign spec"):
        run_campaign(tiny_spec(name="beta"), journal=journal, resume=True)


def test_resume_requires_journal_path():
    with pytest.raises(CampaignError, match="journal"):
        CampaignRunner(tiny_spec(), resume=True)


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
def test_thread_backend_matches_inline(tmp_path):
    spec = tiny_spec(runs=1)
    inline = run_campaign(spec, backend="inline")
    threaded = run_campaign(spec, backend=ThreadBackend(jobs=2))
    assert json.dumps(inline.aggregate, sort_keys=True) == json.dumps(
        threaded.aggregate, sort_keys=True
    )


def test_make_backend_names():
    assert isinstance(make_backend("inline"), InlineBackend)
    assert isinstance(make_backend("process", jobs=2), ProcessBackend)
    assert isinstance(make_backend("thread", jobs=2), ThreadBackend)
    with pytest.raises(CampaignError, match="unknown backend"):
        make_backend("quantum")


def test_cache_serves_second_campaign(tmp_path):
    spec = tiny_spec(runs=1)
    cache = ResultCache(tmp_path / "cache")
    cold = run_campaign(spec, cache=cache)
    warm = run_campaign(spec, cache=cache)
    assert cold.executed == warm.from_cache == cold.total_jobs
    assert warm.executed == 0
    assert json.dumps(cold.aggregate, sort_keys=True) == json.dumps(
        warm.aggregate, sort_keys=True
    )


# ----------------------------------------------------------------------
# Retry
# ----------------------------------------------------------------------
def test_retry_policy_validation_and_backoff():
    policy = RetryPolicy(retries=3, backoff=0.5, multiplier=2.0)
    assert policy.delay(1) == 0.5
    assert policy.delay(2) == 1.0
    with pytest.raises(ValueError):
        RetryPolicy(retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=-0.1)


def test_flaky_worker_retried_to_success(tmp_path):
    spec = tiny_spec(runs=1)
    failed_once = set()
    sleeps = []

    def flaky(config):
        digest = config_digest(config)
        if digest not in failed_once:
            failed_once.add(digest)
            raise RuntimeError("transient crash")
        return run_scenario(config)

    progress = CampaignProgress(printer=lambda line: None)
    result = CampaignRunner(
        spec,
        worker=flaky,
        retry=RetryPolicy(retries=2, backoff=0.01),
        sleep=sleeps.append,
        progress=progress,
    ).run()
    assert result.complete
    assert result.retried == result.total_jobs
    assert sleeps  # backoff was honoured (via the injected sleep)
    assert progress.retries == result.retried
    reference = run_campaign(spec)
    assert json.dumps(result.aggregate, sort_keys=True) == json.dumps(
        reference.aggregate, sort_keys=True
    )


def test_retry_exhaustion_raises_campaign_error():
    # With quarantine off, exhausting the retry budget is fatal (the
    # pre-supervision behaviour).
    spec = tiny_spec(runs=1)

    def always_fails(config):
        raise RuntimeError("hopeless")

    with pytest.raises(CampaignError, match="failed after"):
        CampaignRunner(
            spec,
            worker=always_fails,
            retry=RetryPolicy(retries=1, backoff=0.0),
            supervision=SupervisionPolicy(quarantine=False),
            sleep=lambda _s: None,
        ).run()


# ----------------------------------------------------------------------
# Progress + trace
# ----------------------------------------------------------------------
def test_progress_counters_and_trace_records(tmp_path):
    from repro.sim.trace import TraceLog

    spec = tiny_spec(runs=1)
    lines = []
    progress = CampaignProgress(printer=lines.append)
    trace = TraceLog()
    result = run_campaign(
        spec, journal=tmp_path / "j.jsonl", progress=progress, trace=trace
    )
    assert result.complete
    assert progress.total == result.total_jobs
    assert progress.executed == result.total_jobs
    assert lines  # at least one progress line rendered
    records = [r for r in trace if r.kind == "campaign_job"]
    assert len(records) == result.total_jobs
    assert all(r.fields["source"] == "run" for r in records)
