"""Tests for the SECTOR distance-bounding baseline."""

import random

import pytest

from repro.baselines.sector import LIGHT_SPEED, DistanceBounding, SectorConfig
from repro.net.radio import UnitDiskRadio


def build(positions, **cfg):
    radio = UnitDiskRadio(positions, default_range=30.0)
    config = SectorConfig(comm_range=30.0, **cfg)
    return DistanceBounding(radio, config, random.Random(7))


def test_true_neighbor_accepted_with_sharp_clock():
    bounder = build({0: (0.0, 0.0), 1: (20.0, 0.0)})
    accepted, measured = bounder.verify_neighbor(0, 1)
    assert accepted
    assert measured == pytest.approx(20.0, abs=1.0)


def test_distant_prover_rejected():
    """The relay-created fake neighbor: physically 60 m away."""
    bounder = build({0: (0.0, 0.0), 1: (60.0, 0.0)})
    accepted, measured = bounder.verify_neighbor(0, 1)
    assert not accepted
    assert measured > 30.0


def test_prover_cannot_appear_closer():
    """Distance bounding's core guarantee: measured >= true - noise, and
    the noise band with ns clocks is centimetres."""
    bounder = build({0: (0.0, 0.0), 1: (29.0, 0.0)})
    for _ in range(50):
        _, measured = bounder.verify_neighbor(0, 1)
        assert measured >= 29.0 - 0.2


def test_software_turnaround_reads_as_distance():
    """A 1 microsecond software responder adds ~150 m of apparent
    distance: MAD's special-hardware requirement, quantified."""
    bounder = build({0: (0.0, 0.0), 1: (10.0, 0.0)}, responder_delay=1e-6)
    accepted, measured = bounder.verify_neighbor(0, 1)
    assert not accepted
    assert measured == pytest.approx(10.0 + 1e-6 * LIGHT_SPEED / 2, rel=0.01)


def test_coarse_clock_makes_verification_useless():
    """With microsecond timing the error band is +-150 m: genuine
    neighbors are rejected about half the time."""
    bounder = build({0: (0.0, 0.0), 1: (10.0, 0.0)}, clock_resolution=1e-6)
    rate = bounder.false_reject_rate(0, 1, trials=400)
    assert 0.25 < rate < 0.75


def test_sharp_clock_never_false_rejects():
    bounder = build({0: (0.0, 0.0), 1: (10.0, 0.0)})
    assert bounder.false_reject_rate(0, 1, trials=100) == 0.0


def test_distance_error_formula():
    config = SectorConfig(clock_resolution=2e-9)
    assert config.distance_error == pytest.approx(2e-9 * LIGHT_SPEED / 2)


def test_counters():
    bounder = build({0: (0.0, 0.0), 1: (60.0, 0.0)})
    bounder.verify_neighbor(0, 1)
    assert bounder.verifications == 1
    assert bounder.rejections == 1


def test_config_validation():
    with pytest.raises(ValueError):
        SectorConfig(comm_range=0)
    with pytest.raises(ValueError):
        SectorConfig(clock_resolution=-1)
    with pytest.raises(ValueError):
        SectorConfig(responder_delay=-1)
    bounder = build({0: (0.0, 0.0), 1: (10.0, 0.0)})
    with pytest.raises(ValueError):
        bounder.false_reject_rate(0, 1, trials=0)
