"""Integration tests for the tunnelled wormhole modes (out-of-band and
encapsulation) through the full scenario stack."""

import pytest

from repro.experiments.scenario import ScenarioConfig, build_scenario


def small(mode="outofband", liteworp=True, seed=5, duration=180.0, **kwargs):
    return ScenarioConfig(
        n_nodes=30,
        duration=duration,
        seed=seed,
        attack_mode=mode,
        attack_start=30.0,
        defense="liteworp" if liteworp else "none",
        **kwargs,
    )


@pytest.fixture(scope="module")
def outofband_baseline():
    scenario = build_scenario(small(liteworp=False))
    report = scenario.run()
    return scenario, report


@pytest.fixture(scope="module")
def outofband_protected():
    scenario = build_scenario(small(liteworp=True))
    report = scenario.run()
    return scenario, report


def test_wormhole_attracts_routes_without_liteworp(outofband_baseline):
    _scenario, report = outofband_baseline
    assert report.malicious_routes > 0
    assert report.fraction_malicious_routes > 0.05


def test_wormhole_drops_data_without_liteworp(outofband_baseline):
    _scenario, report = outofband_baseline
    assert report.wormhole_drops > 10


def test_no_isolation_without_liteworp(outofband_baseline):
    _scenario, report = outofband_baseline
    assert report.isolation_times == {}


def test_liteworp_isolates_both_colluders(outofband_protected):
    scenario, report = outofband_protected
    for malicious in scenario.malicious_ids:
        assert report.isolation_latency(malicious) is not None, malicious


def test_liteworp_cuts_drops_by_order_of_magnitude(
    outofband_baseline, outofband_protected
):
    _, base = outofband_baseline
    _, protected = outofband_protected
    assert protected.wormhole_drops < base.wormhole_drops / 4


def test_liteworp_cuts_malicious_routes(outofband_baseline, outofband_protected):
    _, base = outofband_baseline
    _, protected = outofband_protected
    assert protected.fraction_malicious_routes < base.fraction_malicious_routes


def test_isolation_latency_reasonable(outofband_protected):
    _scenario, report = outofband_protected
    latency = report.mean_isolation_latency()
    assert latency is not None
    assert latency < 120.0


def test_no_honest_node_fully_isolated(outofband_protected):
    scenario, report = outofband_protected
    bad = set(scenario.malicious_ids)
    false_theta = [
        record
        for record in scenario.trace.of_kind("isolation")
        if record["accused"] not in bad
    ]
    assert false_theta == []


def test_guards_accuse_via_fabrication(outofband_protected):
    scenario, _report = outofband_protected
    bad = set(scenario.malicious_ids)
    fabrication_on_bad = [
        record
        for record in scenario.trace.of_kind("malc_increment")
        if record["accused"] in bad and record["reason"] == "fabrication"
    ]
    assert fabrication_on_bad


def test_encapsulation_mode_also_detected():
    scenario = build_scenario(small(mode="encapsulation"))
    report = scenario.run()
    isolated = [m for m in scenario.malicious_ids if report.isolation_latency(m) is not None]
    assert isolated  # at least one end isolated within the horizon


def test_encapsulation_tunnel_slower_than_outofband():
    from repro.attacks.coordinator import WormholeCoordinator
    scenario = build_scenario(small(mode="encapsulation"))
    coordinator = scenario.coordinator
    assert coordinator is not None
    a, b = scenario.malicious_ids[:2]
    delay = coordinator._tunnel_delay(a, b)  # noqa: SLF001 - white-box check
    assert delay > WormholeCoordinator(
        scenario.sim, scenario.network, scenario.trace
    )._tunnel_delay(a, b)  # noqa: SLF001


def test_naive_prev_strategy_rejected_by_second_hop_check():
    """With the naive strategy, the forged request names the colluder as
    previous hop; every receiver's two-hop check rejects it outright."""
    scenario = build_scenario(small(fake_prev_strategy="naive", duration=120.0))
    report = scenario.run()
    rejects = scenario.trace.count("frame_rejected", reason="secondhop")
    assert rejects > 0
    assert report.malicious_routes <= 2  # the wormhole gains almost nothing


def test_attack_before_start_time_is_dormant():
    scenario = build_scenario(small(duration=60.0))
    # Peek mid-run: nothing malicious before t=30.
    scenario.traffic.start()
    scenario.sim.run(until=29.0)
    assert scenario.trace.count("malicious_drop") == 0
    assert scenario.trace.count("wormhole_activity") == 0


def test_single_colluder_tunnel_mode_rejected():
    with pytest.raises(ValueError):
        ScenarioConfig(n_nodes=20, attack_mode="outofband", n_malicious=1)


def test_zero_malicious_is_clean():
    scenario = build_scenario(
        ScenarioConfig(n_nodes=20, duration=80.0, seed=2, attack_mode="none", n_malicious=0)
    )
    report = scenario.run()
    assert report.wormhole_drops == 0
    assert report.malicious_routes == 0
