"""Event-driven time-series recorder tests (synthetic record streams)."""

import json

import pytest

from repro.obs.series import (
    Series,
    SeriesRecorder,
    aggregate_bands,
    regular_times,
    series_to_csv,
    series_to_json,
)
from repro.sim.trace import TraceLog, TraceRecord


def rec(time, kind, **fields):
    return TraceRecord(time=time, kind=kind, fields=fields)


# ----------------------------------------------------------------------
# Series primitive
# ----------------------------------------------------------------------
def test_series_sample_and_hold():
    series = Series("s")
    series.add(1.0, 5.0)
    series.add(3.0, 2.0)
    assert series.value_at(0.5) == 0.0  # before first point: initial
    assert series.value_at(1.0) == 5.0
    assert series.value_at(2.9) == 5.0
    assert series.value_at(3.0) == 2.0
    assert series.value_at(99.0) == 2.0
    assert series.resample([0.5, 2.0, 4.0]) == [0.0, 5.0, 2.0]
    assert series.final == 2.0
    assert len(series) == 2


def test_series_same_time_overwrites_and_rejects_backwards():
    series = Series("s")
    series.add(1.0, 5.0)
    series.add(1.0, 7.0)  # last write wins
    assert series.points() == [(1.0, 7.0)]
    with pytest.raises(ValueError):
        series.add(0.5, 1.0)


def test_regular_times_covers_horizon():
    assert regular_times(10.0, 2.5) == [2.5, 5.0, 7.5, 10.0]
    grid = regular_times(9.9, 2.5)
    assert grid[-1] >= 9.9
    assert regular_times(0.0, 1.0) == [1.0]
    with pytest.raises(ValueError):
        regular_times(10.0, 0.0)


# ----------------------------------------------------------------------
# Recorder semantics, kind by kind
# ----------------------------------------------------------------------
def test_watch_buffer_sums_latest_per_guard():
    recorder = SeriesRecorder()
    recorder.process(rec(1.0, "watch_buffer", guard=1, size=3, peak=3))
    recorder.process(rec(2.0, "watch_buffer", guard=2, size=2, peak=2))
    recorder.process(rec(3.0, "watch_buffer", guard=1, size=1, peak=3))
    series = recorder.get("watch_buffer")
    assert series.points() == [(1.0, 3.0), (2.0, 5.0), (3.0, 3.0)]


def test_malc_series_cumulative_and_per_node():
    recorder = SeriesRecorder()
    recorder.process(rec(1.0, "malc_increment", guard=1, accused=7, value=2,
                         reason="drop", packet=1, total=2))
    recorder.process(rec(2.0, "malc_increment", guard=2, accused=9, value=1,
                         reason="drop", packet=2, total=1))
    recorder.process(rec(3.0, "malc_increment", guard=1, accused=7, value=1,
                         reason="drop", packet=3, total=3))
    assert recorder.get("malc_total").points() == [(1.0, 2.0), (2.0, 3.0), (3.0, 4.0)]
    assert recorder.get("malc[7]").points() == [(1.0, 2.0), (3.0, 3.0)]
    assert recorder.get("malc[9]").points() == [(2.0, 1.0)]


def test_alerts_in_flight_tracks_acks_and_abandons():
    recorder = SeriesRecorder()
    recorder.process(rec(1.0, "alert_sent", guard=1, accused=7, recipient=3))
    recorder.process(rec(2.0, "alert_sent", guard=1, accused=7, recipient=4))
    recorder.process(rec(3.0, "alert_ack_verified", guard=1, accused=7, recipient=3))
    recorder.process(rec(4.0, "alert_abandoned", guard=1, accused=7,
                         recipient=4, attempts=5))
    assert recorder.get("alerts_in_flight").points() == [
        (1.0, 1.0), (2.0, 2.0), (3.0, 1.0), (4.0, 0.0),
    ]


def test_ack_without_send_never_goes_negative():
    recorder = SeriesRecorder()
    recorder.process(rec(1.0, "alert_ack_verified", guard=1, accused=7, recipient=3))
    assert recorder.get("alerts_in_flight").final == 0.0


def test_revoked_neighbors_dedups_revokers():
    recorder = SeriesRecorder()
    recorder.process(rec(1.0, "guard_detection", guard=1, accused=7))
    recorder.process(rec(2.0, "isolation", node=3, accused=7, alerts=3))
    recorder.process(rec(3.0, "guard_detection", guard=1, accused=7))  # repeat
    series = recorder.get("revoked_neighbors")
    assert series.points() == [(1.0, 1.0), (2.0, 2.0)]
    assert recorder.get("revoked[7]").points() == [(1.0, 1.0), (2.0, 2.0)]


def test_revoked_fraction_with_neighborhood_ground_truth():
    recorder = SeriesRecorder(neighborhoods={7: 4})
    recorder.process(rec(1.0, "guard_detection", guard=1, accused=7))
    recorder.process(rec(2.0, "isolation", node=3, accused=7, alerts=3))
    assert recorder.get("revoked[7]").points() == [(1.0, 0.25), (2.0, 0.5)]


def test_wormhole_drops_cumulative():
    recorder = SeriesRecorder()
    recorder.process(rec(1.0, "malicious_drop", node=7, packet=1))
    recorder.process(rec(5.0, "malicious_drop", node=8, packet=2))
    assert recorder.get("wormhole_drops").points() == [(1.0, 1.0), (5.0, 2.0)]


def test_live_and_replay_produce_identical_series():
    records = [
        rec(1.0, "malicious_drop", node=7, packet=1),
        rec(2.0, "malc_increment", guard=1, accused=7, value=1,
            reason="drop", packet=1, total=1),
        rec(3.0, "guard_detection", guard=1, accused=7),
    ]
    trace = TraceLog()
    live = SeriesRecorder()
    live.attach(trace)
    for record in records:
        trace.emit(record.time, record.kind, **record.fields)
    replay = SeriesRecorder()
    for record in records:
        replay.process(record)
    times = regular_times(4.0, 1.0)
    assert series_to_json(live.series(), times) == series_to_json(
        replay.series(), times
    )


def test_global_series_exist_even_when_untouched():
    names = set(SeriesRecorder().series())
    assert set(SeriesRecorder.GLOBAL_SERIES) <= names


# ----------------------------------------------------------------------
# Aggregation and export
# ----------------------------------------------------------------------
def test_aggregate_bands_mean_min_max():
    a, b = Series("x"), Series("x")
    a.add(1.0, 2.0)
    b.add(1.0, 4.0)
    bands = aggregate_bands([a, b], [1.0, 2.0])
    assert bands == {"mean": [3.0, 3.0], "min": [2.0, 2.0], "max": [4.0, 4.0]}
    with pytest.raises(ValueError):
        aggregate_bands([], [1.0])


def test_series_to_csv_shape():
    a = Series("alpha")
    a.add(1.0, 2.0)
    text = series_to_csv({"alpha": a}, [1.0, 2.0])
    lines = text.splitlines()
    assert lines[0] == "time,alpha"
    assert lines[1].startswith("1.0,")
    assert len(lines) == 3


def test_series_to_json_deterministic():
    a = Series("alpha")
    a.add(1.0, 2.0)
    first = series_to_json({"alpha": a}, [1.0, 2.0])
    second = series_to_json({"alpha": a}, [1.0, 2.0])
    assert first == second
    payload = json.loads(first)
    assert payload["series"]["alpha"] == [2.0, 2.0]
