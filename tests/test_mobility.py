"""Tests for the mobility extension (random waypoint + dynamic secure
neighbor discovery)."""

import random

import pytest

from repro.core.agent import LiteworpAgent
from repro.core.config import LiteworpConfig
from repro.crypto.keys import PairwiseKeyManager
from repro.mobility.dynamic import DynamicNeighborhood
from repro.mobility.waypoint import RandomWaypointModel, WaypointConfig
from repro.net.radio import distance
from repro.net.topology import Topology, grid_topology
from tests.conftest import Harness


# ----------------------------------------------------------------------
# Random waypoint model
# ----------------------------------------------------------------------
def build_waypoint(n=4, side=100.0, **cfg):
    harness = Harness(grid_topology(columns=n, rows=1, spacing=20.0, tx_range=30.0))
    config = WaypointConfig(field_side=side, **cfg)
    model = RandomWaypointModel(
        harness.sim, harness.network.radio, list(range(n)), config, random.Random(7)
    )
    return harness, model


def test_waypoint_moves_nodes():
    harness, model = build_waypoint()
    start = {n: model.position(n) for n in model.mobile_nodes}
    model.start()
    harness.run(30.0)
    moved = [n for n in model.mobile_nodes if model.position(n) != start[n]]
    assert moved


def test_waypoint_positions_stay_in_field():
    harness, model = build_waypoint(side=50.0, max_speed=10.0)
    model.start()
    for _ in range(5):
        harness.run(harness.sim.now + 10.0)
        for node in model.mobile_nodes:
            x, y = model.position(node)
            assert -1e-9 <= x <= 50.0 and -1e-9 <= y <= 50.0


def test_waypoint_speed_bounded():
    harness, model = build_waypoint(min_speed=2.0, max_speed=3.0, pause_time=0.0,
                                    step_interval=1.0)
    model.start()
    previous = {n: model.position(n) for n in model.mobile_nodes}
    harness.run(1.0)
    for node in model.mobile_nodes:
        step = distance(previous[node], model.position(node))
        assert step <= 3.0 + 1e-9


def test_waypoint_updates_radio():
    harness, model = build_waypoint()
    model.start()
    harness.run(20.0)
    for node in model.mobile_nodes:
        assert harness.network.radio.position(node) == model.position(node)


def test_waypoint_subscribers_notified():
    harness, model = build_waypoint(pause_time=0.0)
    events = []
    model.subscribe(lambda node, pos: events.append(node))
    model.start()
    harness.run(5.0)
    assert events


def test_waypoint_stop_freezes():
    harness, model = build_waypoint(pause_time=0.0)
    model.start()
    harness.run(5.0)
    frozen = {n: model.position(n) for n in model.mobile_nodes}
    model.stop()
    harness.run(15.0)
    assert {n: model.position(n) for n in model.mobile_nodes} == frozen


def test_waypoint_config_validation():
    with pytest.raises(ValueError):
        WaypointConfig(field_side=0)
    with pytest.raises(ValueError):
        WaypointConfig(field_side=10, min_speed=0)
    with pytest.raises(ValueError):
        WaypointConfig(field_side=10, min_speed=5, max_speed=1)
    with pytest.raises(ValueError):
        WaypointConfig(field_side=10, step_interval=0)


# ----------------------------------------------------------------------
# Dynamic neighborhood
# ----------------------------------------------------------------------
def build_dynamic(positions, keyless=(), latency=0.3):
    topo = Topology(positions=dict(positions), tx_range=30.0)
    harness = Harness(topo)
    keys = PairwiseKeyManager()
    agents = {}
    for node_id in topo.node_ids:
        agent = LiteworpAgent(
            harness.sim, harness.node(node_id), keys.enroll(node_id),
            LiteworpConfig(), harness.trace,
        )
        agent.install_oracle(topo.adjacency())
        agents[node_id] = agent
    dyn = DynamicNeighborhood(
        harness.sim, harness.network.radio, agents, harness.trace,
        handshake_latency=latency, keyless=set(keyless),
    )
    return harness, agents, dyn


def test_link_forms_when_node_moves_into_range():
    positions = {0: (0.0, 0.0), 1: (100.0, 0.0)}
    harness, agents, dyn = build_dynamic(positions)
    assert not agents[0].table.is_neighbor(1)
    harness.network.radio.set_position(1, (20.0, 0.0))
    dyn.on_position_update(1, (20.0, 0.0))
    harness.run(1.0)
    assert agents[0].table.is_neighbor(1)
    assert agents[1].table.is_neighbor(0)
    assert dyn.links_formed == 1


def test_handshake_aborts_if_node_moves_away_again():
    positions = {0: (0.0, 0.0), 1: (100.0, 0.0)}
    harness, agents, dyn = build_dynamic(positions, latency=0.5)
    harness.network.radio.set_position(1, (20.0, 0.0))
    dyn.on_position_update(1, (20.0, 0.0))
    # Before the handshake completes, node 1 leaves again.
    harness.run(0.2)
    harness.network.radio.set_position(1, (100.0, 0.0))
    dyn.on_position_update(1, (100.0, 0.0))
    harness.run(2.0)
    assert not agents[0].table.is_neighbor(1)


def test_link_breaks_when_node_departs():
    positions = {0: (0.0, 0.0), 1: (20.0, 0.0)}
    harness, agents, dyn = build_dynamic(positions)
    assert agents[0].table.is_neighbor(1)
    harness.network.radio.set_position(1, (200.0, 0.0))
    dyn.on_position_update(1, (200.0, 0.0))
    assert not agents[0].table.is_neighbor(1)
    assert not agents[1].table.is_neighbor(0)
    assert dyn.links_broken == 1


def test_keyless_node_cannot_join():
    positions = {0: (0.0, 0.0), 9: (100.0, 0.0)}
    harness, agents, dyn = build_dynamic(positions, keyless=(9,))
    harness.network.radio.set_position(9, (20.0, 0.0))
    dyn.on_position_update(9, (20.0, 0.0))
    harness.run(2.0)
    assert not agents[0].table.is_neighbor(9)
    assert dyn.handshakes_rejected == 1


def test_revocation_is_sticky_across_reentry():
    positions = {0: (0.0, 0.0), 1: (20.0, 0.0)}
    harness, agents, dyn = build_dynamic(positions)
    agents[0].table.revoke(1)
    # Node 1 leaves and comes back.
    harness.network.radio.set_position(1, (200.0, 0.0))
    dyn.on_position_update(1, (200.0, 0.0))
    harness.network.radio.set_position(1, (20.0, 0.0))
    dyn.on_position_update(1, (20.0, 0.0))
    harness.run(2.0)
    assert agents[0].table.is_revoked(1)
    assert not agents[0].table.is_active_neighbor(1)
    assert harness.trace.count("mobile_admission_refused", node=0, revoked=1) == 1


def test_second_hop_lists_refreshed_on_link_change():
    positions = {0: (0.0, 0.0), 1: (20.0, 0.0), 2: (40.0, 0.0)}
    harness, agents, dyn = build_dynamic(positions)
    # Node 2 moves next to node 0 and 1 (all mutually in range).
    harness.network.radio.set_position(2, (10.0, 5.0))
    dyn.on_position_update(2, (10.0, 5.0))
    harness.run(2.0)
    assert agents[0].table.is_neighbor(2)
    # Node 0's stored R_2 now includes both 0 and 1.
    reach = agents[0].table.neighbors_of(2)
    assert reach is not None and {0, 1}.issubset(reach)


def test_remove_neighbor_keeps_revoked_tombstone():
    from repro.core.tables import NeighborTable
    table = NeighborTable(owner=0)
    table.add_neighbor(1)
    table.revoke(1)
    assert not table.remove_neighbor(1)
    assert table.is_revoked(1)


def test_full_mobile_stack_maintains_consistency():
    """Waypoint + dynamic neighborhood on a 9-node field: tables always
    match the radio's ground truth at quiescence (links that stabilised)."""
    topo = grid_topology(columns=3, rows=3, spacing=25.0, tx_range=30.0)
    harness = Harness(topo)
    keys = PairwiseKeyManager()
    agents = {}
    for node_id in topo.node_ids:
        agent = LiteworpAgent(
            harness.sim, harness.node(node_id), keys.enroll(node_id),
            LiteworpConfig(), harness.trace,
        )
        agent.install_oracle(topo.adjacency())
        agents[node_id] = agent
    dyn = DynamicNeighborhood(
        harness.sim, harness.network.radio, agents, harness.trace,
        handshake_latency=0.1,
    )
    model = RandomWaypointModel(
        harness.sim, harness.network.radio, [0, 4, 8],
        WaypointConfig(field_side=60.0, min_speed=2.0, max_speed=6.0, pause_time=1.0),
        random.Random(3),
    )
    model.subscribe(dyn.on_position_update)
    model.start()
    harness.run(60.0)
    model.stop()
    harness.run(62.0)  # let pending handshakes drain
    radio = harness.network.radio
    for node, agent in agents.items():
        truth = set(radio.neighbors(node))
        believed = set(agent.table.active_neighbors())
        assert believed == truth, (node, believed, truth)
