"""End-to-end integration tests exercising the whole stack together."""

import pytest

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.routing.config import RoutingConfig


def test_full_pipeline_with_protocol_discovery():
    """Message-driven neighbor discovery + wormhole + detection, no oracle."""
    config = ScenarioConfig(
        n_nodes=25,
        duration=180.0,
        seed=13,
        attack_start=40.0,
        oracle_neighbors=False,
    )
    scenario = build_scenario(config)
    report = scenario.run()
    # Discovery completed on every node (insiders participate too —
    # they are compromised only after T_CT).
    assert scenario.trace.count("nd_complete") == config.n_nodes
    # Traffic flowed.
    assert report.delivered > 0
    # The wormhole was detected by at least some guards.
    detected = {
        record["accused"]
        for record in scenario.trace.of_kind("guard_detection")
        if record["accused"] in set(scenario.malicious_ids)
    }
    assert detected


def test_isolation_stops_future_malicious_routes():
    """After isolation, the wormhole stops capturing new routes."""
    config = ScenarioConfig(n_nodes=30, duration=240.0, seed=5, attack_start=30.0)
    scenario = build_scenario(config)
    report = scenario.run()
    isolation_done = max(report.isolation_times.values(), default=None)
    if isolation_done is None:
        pytest.skip("wormhole not fully isolated in this horizon")
    grace = isolation_done + 20.0  # alerts propagate, caches may linger
    late_malicious = [
        record
        for record in scenario.trace.of_kind("route_established")
        if record.time > grace
        and (
            set(record.get("path", ())) & set(scenario.malicious_ids)
            or record.get("next_hop") in set(scenario.malicious_ids)
        )
    ]
    assert late_malicious == []


def test_cached_routes_keep_dropping_until_timeout():
    """Paper figure 8 commentary: drops continue briefly after isolation
    because cached routes containing the wormhole persist until
    TOut_Route."""
    config = ScenarioConfig(
        n_nodes=30,
        duration=240.0,
        seed=5,
        attack_start=30.0,
        routing=RoutingConfig(route_timeout=50.0),
    )
    scenario = build_scenario(config)
    report = scenario.run()
    if not report.isolation_times or not report.drop_times:
        pytest.skip("need both isolation and drops for this check")
    first_isolation = min(report.isolation_times.values())
    # No wormhole data drops after isolation + route timeout.
    cutoff = first_isolation + 50.0 + 10.0
    assert all(t <= cutoff for t in report.drop_times)


def test_delivery_healthy_without_attack():
    config = ScenarioConfig(
        n_nodes=30, duration=150.0, seed=7, attack_mode="none", n_malicious=0
    )
    report = build_scenario(config).run()
    assert report.fraction_dropped < 0.15


def test_liteworp_overhead_negligible_without_attack():
    """LITEWORP should not hurt a healthy network (no extra traffic in
    failure-free operation beyond discovery, per the paper's claims)."""
    base = build_scenario(
        ScenarioConfig(n_nodes=25, duration=120.0, seed=9, attack_mode="none",
                       n_malicious=0, defense="none")
    ).run()
    protected = build_scenario(
        ScenarioConfig(n_nodes=25, duration=120.0, seed=9, attack_mode="none",
                       n_malicious=0, defense="liteworp")
    ).run()
    assert protected.delivered >= base.delivered * 0.9


def test_watch_buffer_stays_small():
    """Paper 5.2: a watch buffer of a few entries suffices."""
    config = ScenarioConfig(n_nodes=30, duration=120.0, seed=7, attack_start=30.0)
    scenario = build_scenario(config)
    scenario.run()
    peaks = [agent.monitor.watch_buffer_peak for agent in scenario.agents.values()]
    assert max(peaks) <= 20  # bounded; typically single digits
    assert sum(peaks) / len(peaks) < 6


def test_malicious_node_storage_matches_cost_model():
    """Neighbor-table storage of every honest node stays under the paper's
    half-kilobyte-at-NB-10 style budget (scaled to its actual degree)."""
    config = ScenarioConfig(n_nodes=30, duration=60.0, seed=7, attack_start=30.0)
    scenario = build_scenario(config)
    for node_id, agent in scenario.agents.items():
        degree = len(scenario.network.neighbors(node_id))
        budget = 5 * degree + 4 * sum(
            len(scenario.network.neighbors(n)) for n in scenario.network.neighbors(node_id)
        )
        assert agent.table.storage_bytes() <= budget


def test_deterministic_full_run():
    config = ScenarioConfig(n_nodes=25, duration=120.0, seed=3, attack_start=30.0)
    r1 = build_scenario(config).run()
    r2 = build_scenario(config).run()
    assert r1.drop_times == r2.drop_times
    assert r1.isolation_times == r2.isolation_times
    assert r1.routes_established == r2.routes_established
