"""Integration tests for the single-node wormhole modes: high-power
transmission, packet relay, and protocol deviation (rushing)."""

import pytest

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.core.config import LiteworpConfig


def config(mode, protected=True, seed=5, **kwargs):
    return ScenarioConfig(
        n_nodes=30,
        duration=150.0,
        seed=seed,
        attack_mode=mode,
        n_malicious=1,
        attack_start=30.0,
        defense="liteworp" if protected else "none",
        **kwargs,
    )


# ----------------------------------------------------------------------
# High-power transmission (paper 3.3)
# ----------------------------------------------------------------------
def test_highpower_reaches_distant_nodes_in_baseline():
    scenario = build_scenario(config("highpower", protected=False))
    attacker = scenario.malicious_ids[0]
    received_far = []

    legit = set(scenario.network.neighbors(attacker))

    def spy(frame):
        if frame.transmitter == attacker:
            received_far.append(frame)

    # Attach a spy on some node outside the attacker's legal range.
    far_nodes = [n for n in scenario.network.node_ids() if n not in legit and n != attacker]
    for node in far_nodes:
        scenario.network.node(node).add_observer(spy)
    scenario.run()
    assert received_far  # high-power frames physically reached far nodes


def test_highpower_rejected_by_liteworp_non_neighbor_check():
    scenario = build_scenario(config("highpower", protected=True))
    report = scenario.run()
    attacker = scenario.malicious_ids[0]
    # Far nodes rejected the attacker's frames as non-neighbor.
    rejrelated = [
        record
        for record in scenario.trace.of_kind("frame_rejected")
        if record["reason"] == "nonneighbor" and record["tx"] == attacker
    ]
    assert rejrelated_nonempty(rejrelated=rejrelated)


def rejrelated_nonempty(rejrelated):
    return len(rejrelated) > 0


def test_highpower_attracts_more_routes_than_fair_share_in_baseline():
    baseline = build_scenario(config("highpower", protected=False)).run()
    assert baseline.wormhole_drops >= 0  # attack ran; drops possible
    # The malicious-route fraction should exceed 1/N fair share when the
    # attacker manages to get on routes at all.
    if baseline.malicious_routes:
        assert baseline.fraction_malicious_routes > 1.0 / 30


# ----------------------------------------------------------------------
# Packet relay (paper 3.4)
# ----------------------------------------------------------------------
def test_relay_creates_fake_link_in_baseline():
    scenario = build_scenario(config("relay", protected=False))
    attacker = scenario.relay_attacker
    assert attacker is not None
    scenario.run()
    assert attacker.relayed > 0


def test_relay_victims_are_not_real_neighbors():
    scenario = build_scenario(config("relay", protected=False))
    attacker = scenario.relay_attacker
    a, b = attacker.victims
    assert b not in scenario.network.neighbors(a)
    # ...but both are neighbors of the relay node.
    relay_node = scenario.malicious_ids[0]
    assert a in scenario.network.neighbors(relay_node)
    assert b in scenario.network.neighbors(relay_node)


def test_relay_frames_rejected_by_liteworp():
    scenario = build_scenario(config("relay", protected=True))
    attacker = scenario.relay_attacker
    a, b = attacker.victims
    scenario.run()
    if attacker.relayed == 0:
        pytest.skip("no traffic crossed the victim pair in this horizon")
    # Victim B receives frames claiming transmitter=A: non-neighbor reject.
    rejected = [
        record
        for record in scenario.trace.of_kind("frame_rejected")
        if record["reason"] == "nonneighbor"
        and record["tx"] in (a, b)
        and record["node"] in (a, b)
    ]
    assert rejected


# ----------------------------------------------------------------------
# Protocol deviation / rushing (paper 3.5)
# ----------------------------------------------------------------------
def test_rushing_attacker_gets_on_routes_and_drops():
    baseline = build_scenario(config("rushing", protected=False, seed=9)).run()
    assert baseline.wormhole_drops > 0
    assert baseline.malicious_routes > 0


def test_rushing_not_detected_by_base_liteworp():
    """Paper 4.2.3: LITEWORP cannot detect the protocol-deviation mode."""
    scenario = build_scenario(config("rushing", protected=True, seed=9))
    report = scenario.run()
    attacker = scenario.malicious_ids[0]
    assert report.isolation_latency(attacker) is None
    # No guard ever crossed C_t for the rusher.
    assert scenario.trace.count("guard_detection", accused=attacker) == 0


def test_rushing_detected_with_watch_data_extension():
    """Our extension: watching data packets catches the rusher's drops."""
    lw = LiteworpConfig(watch_data=True)
    scenario = build_scenario(config("rushing", protected=True, seed=9, liteworp=lw))
    report = scenario.run()
    attacker = scenario.malicious_ids[0]
    assert scenario.trace.count("guard_detection", accused=attacker) > 0
