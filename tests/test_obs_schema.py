"""Trace-schema registry and strict emission mode."""

import pytest

from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.obs.config import ObsConfig
from repro.obs.schema import (
    DEFAULT_REGISTRY,
    SchemaRegistry,
    TraceSchema,
    TraceSchemaError,
    install_strict,
)
from repro.sim.trace import TraceLog, TraceRecord


def test_default_registry_covers_the_protocol_vocabulary():
    for kind in (
        "malc_increment", "guard_detection", "alert_sent", "alert_accepted",
        "alert_rejected", "alert_ack_verified", "alert_retransmit",
        "alert_abandoned", "alert_undeliverable", "isolation",
        "frame_rejected", "send_blocked", "data_origin", "data_delivered",
        "malicious_drop", "wormhole_activity", "neighbor_dead",
        "fault_injected", "mobile_link_formed",
    ):
        assert kind in DEFAULT_REGISTRY, kind


def test_valid_record_passes():
    record = TraceRecord(1.0, "isolation", {"node": 2, "accused": 4, "alerts": 3})
    assert DEFAULT_REGISTRY.errors(record) == []
    DEFAULT_REGISTRY.validate(record)  # no raise


def test_unknown_kind_is_an_error():
    record = TraceRecord(0.0, "isolaton", {"node": 2})  # typo'd kind
    (problem,) = DEFAULT_REGISTRY.errors(record)
    assert "unknown trace kind" in problem
    with pytest.raises(TraceSchemaError):
        DEFAULT_REGISTRY.validate(record)


def test_missing_required_field_is_an_error():
    record = TraceRecord(0.0, "isolation", {"node": 2, "accused": 4})
    (problem,) = DEFAULT_REGISTRY.errors(record)
    assert "missing required" in problem and "alerts" in problem


def test_undeclared_field_is_an_error():
    record = TraceRecord(
        0.0, "isolation", {"node": 2, "accused": 4, "alerts": 3, "extra": 1}
    )
    (problem,) = DEFAULT_REGISTRY.errors(record)
    assert "undeclared" in problem and "extra" in problem


def test_optional_fields_may_be_absent_or_present():
    registry = SchemaRegistry()
    registry.declare("thing", required=["a"], optional=["b"])
    assert registry.errors(TraceRecord(0.0, "thing", {"a": 1})) == []
    assert registry.errors(TraceRecord(0.0, "thing", {"a": 1, "b": 2})) == []


def test_install_strict_raises_on_emit():
    trace = TraceLog()
    install_strict(trace)
    trace.emit(0.0, "guard_detection", guard=0, accused=4)  # valid
    with pytest.raises(TraceSchemaError):
        trace.emit(0.0, "guard_detection", guard=0)  # missing accused
    # The failing record is not stored.
    assert trace.total_emitted == 1
    assert len(trace) == 1


def test_validator_can_be_cleared():
    trace = TraceLog()
    install_strict(trace)
    trace.set_validator(None)
    trace.emit(0.0, "anything-goes", whatever=1)
    assert trace.count("anything-goes") == 1


def test_registry_iteration_and_markdown_table():
    table = DEFAULT_REGISTRY.markdown_table()
    assert table.startswith("| kind |")
    for schema in DEFAULT_REGISTRY:
        assert isinstance(schema, TraceSchema)
        assert f"`{schema.kind}`" in table
    assert len(DEFAULT_REGISTRY.kinds()) == len(DEFAULT_REGISTRY)


@pytest.mark.parametrize("attack_mode", ["none", "outofband"])
def test_full_scenario_emits_only_declared_records(attack_mode):
    """Strict mode over a real run: every emit matches the registry."""
    config = ScenarioConfig(
        n_nodes=16,
        duration=50.0,
        seed=5,
        attack_mode=attack_mode,
        n_malicious=2 if attack_mode != "none" else 0,
        attack_start=20.0,
        obs=ObsConfig(strict=True),
    )
    build_scenario(config).run()  # TraceSchemaError would propagate
