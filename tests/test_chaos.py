"""Chaos runner plumbing: config validation, plan derivation, wiring.

Full chaos runs (both liveness arms) live in
``benchmarks/test_bench_chaos.py``; these tests cover the cheap parts —
plan derivation is deterministic, targets come from the guard pool, and
the scenario config carries the liveness ablation correctly.
"""

import pytest

from repro.experiments.chaos import (
    ChaosConfig,
    guard_pool,
    make_chaos_plan,
)
from repro.experiments.scenario import build_scenario
from repro.faults.plan import CrashRecover, CrashStop, LossBurst


def test_config_validation():
    with pytest.raises(ValueError, match="crash_fraction"):
        ChaosConfig(crash_fraction=1.5)
    with pytest.raises(ValueError, match="recover_fraction"):
        ChaosConfig(recover_fraction=-0.1)
    with pytest.raises(ValueError, match="loss_probability"):
        ChaosConfig(loss_probability=1.0)
    with pytest.raises(ValueError, match="crash_at"):
        ChaosConfig(attack_start=100.0, crash_at=90.0)
    with pytest.raises(ValueError, match="inside the run"):
        ChaosConfig(duration=100.0, crash_at=150.0, attack_start=40.0)
    with pytest.raises(ValueError, match="data_rate"):
        ChaosConfig(data_rate=0.0)
    with pytest.raises(ValueError, match="route_timeout"):
        ChaosConfig(route_timeout=-1.0)
    with pytest.raises(ValueError, match="v_drop"):
        ChaosConfig(v_drop=0)


def test_scenario_config_carries_liveness_ablation():
    on = ChaosConfig(liveness=True).scenario_config()
    off = ChaosConfig(liveness=False).scenario_config()
    assert on.liteworp.heartbeat_period == ChaosConfig().heartbeat_period
    assert off.liteworp.heartbeat_period is None
    for config in (on, off):
        assert config.liteworp.watch_data is True
        assert config.liteworp.v_drop == ChaosConfig().v_drop
        assert config.routing.route_timeout == ChaosConfig().route_timeout
        assert config.traffic.data_rate == ChaosConfig().data_rate
        assert config.attack_mode == "outofband"


def test_plan_is_deterministic_and_arm_independent():
    config = ChaosConfig(seed=7)
    plan = make_chaos_plan(config)
    assert plan == make_chaos_plan(ChaosConfig(seed=7))
    # The ablation arm must face the identical fault plan.
    assert plan == make_chaos_plan(ChaosConfig(seed=7, liveness=False))
    assert plan != make_chaos_plan(ChaosConfig(seed=8))


def test_crash_targets_drawn_from_guard_pool():
    config = ChaosConfig(seed=7, crash_fraction=0.3)
    scenario = build_scenario(config.scenario_config())
    pool = guard_pool(scenario)
    assert pool  # the wormhole always has honest neighbors
    assert set(pool).isdisjoint(set(scenario.malicious_ids))
    plan = make_chaos_plan(config)
    crashed = plan.crashed_nodes()
    assert set(crashed) <= set(pool)
    assert len(crashed) == max(1, round(0.3 * len(pool)))


def test_crashes_are_staggered_and_burst_included():
    config = ChaosConfig(seed=7, crash_spacing=2.0)
    plan = make_chaos_plan(config)
    crash_times = sorted(
        f.at for f in plan if isinstance(f, (CrashStop, CrashRecover))
    )
    assert crash_times[0] == config.crash_at
    deltas = {
        round(b - a, 6) for a, b in zip(crash_times, crash_times[1:])
    }
    assert deltas <= {2.0}
    bursts = [f for f in plan if isinstance(f, LossBurst)]
    assert len(bursts) == 1
    assert bursts[0].probability == config.loss_probability


def test_recover_fraction_splits_fault_types():
    config = ChaosConfig(seed=7, recover_fraction=1.0, downtime=30.0)
    plan = make_chaos_plan(config)
    assert not [f for f in plan if isinstance(f, CrashStop)]
    recovers = [f for f in plan if isinstance(f, CrashRecover)]
    assert recovers and all(f.downtime == 30.0 for f in recovers)
    assert plan.permanently_down() == ()


def test_zero_loss_omits_burst():
    plan = make_chaos_plan(ChaosConfig(seed=7, loss_probability=0.0))
    assert not [f for f in plan if isinstance(f, LossBurst)]
