"""FaultController: plans become physical effects on the live network."""

from repro.faults.controller import FaultController
from repro.faults.plan import (
    ClockDrift,
    CrashRecover,
    CrashStop,
    FaultPlan,
    LinkFlap,
    LossBurst,
    MacSaturation,
)
from repro.net.packet import DataPacket
from repro.net.topology import grid_topology
from tests.conftest import Harness


def make_harness(**net_kwargs) -> Harness:
    return Harness(
        grid_topology(columns=3, rows=1, spacing=20.0, tx_range=30.0), **net_kwargs
    )


def delivered(harness, src, dst, sequence, at):
    """Schedule a unicast at ``at``; return a flag list filled on reception."""
    hits = []
    harness.node(dst).add_listener(
        lambda frame: hits.append(frame)
        if isinstance(frame.packet, DataPacket)
        and frame.packet.sequence == sequence
        else None
    )
    harness.sim.schedule_at(
        at,
        lambda: harness.node(src).unicast(
            DataPacket(origin=src, destination=dst, sequence=sequence),
            next_hop=dst,
            jitter=0.0,
        ),
    )
    return hits


def test_crash_stop_silences_node():
    harness = make_harness()
    controller = FaultController(harness.network, harness.trace)
    controller.apply(FaultPlan.of(CrashStop(at=5.0, node=1)))
    before = delivered(harness, 0, 1, sequence=1, at=1.0)
    after = delivered(harness, 0, 1, sequence=2, at=10.0)
    harness.run(20.0)
    assert before and not after
    assert not harness.node(1).alive
    assert controller.injected == 1 and controller.cleared == 0
    record = harness.trace.first("fault_injected", fault="crash_stop")
    assert record is not None and record["node"] == 1 and record.time == 5.0


def test_crash_recover_restores_node():
    harness = make_harness()
    controller = FaultController(harness.network, harness.trace)
    controller.apply(FaultPlan.of(CrashRecover(at=5.0, node=1, downtime=10.0)))
    during = delivered(harness, 0, 1, sequence=1, at=10.0)
    after = delivered(harness, 0, 1, sequence=2, at=20.0)
    harness.run(30.0)
    assert not during and after
    assert harness.node(1).alive
    assert controller.cleared == 1
    assert harness.trace.count("fault_cleared", fault="crash_recover") == 1


def test_link_flap_is_transient_and_directionless():
    harness = make_harness()
    controller = FaultController(harness.network, harness.trace)
    controller.apply(FaultPlan.of(LinkFlap(at=5.0, a=0, b=1, downtime=10.0)))
    down = delivered(harness, 1, 0, sequence=1, at=10.0)  # reverse direction
    up = delivered(harness, 0, 1, sequence=2, at=20.0)
    harness.run(30.0)
    assert not down and up
    assert controller.cleared == 1


def test_loss_burst_restores_previous_level():
    harness = make_harness(ambient_loss=0.02)
    controller = FaultController(harness.network, harness.trace)
    controller.apply(FaultPlan.of(LossBurst(at=5.0, probability=0.5, duration=10.0)))
    harness.run(4.0)
    assert harness.network.channel.ambient_loss == 0.02
    harness.run(10.0)
    assert harness.network.channel.ambient_loss == 0.5
    harness.run(30.0)
    assert harness.network.channel.ambient_loss == 0.02


def test_mac_saturation_emits_noise():
    harness = make_harness()
    controller = FaultController(harness.network, harness.trace)
    controller.apply(FaultPlan.of(MacSaturation(at=1.0, node=0, duration=2.0, rate=10.0)))
    harness.run(10.0)
    mac = harness.node(0).mac
    assert mac.sent + mac.dropped >= 20
    assert controller.cleared == 1


def test_clock_drift_sets_skew():
    harness = make_harness()
    controller = FaultController(harness.network, harness.trace)
    controller.apply(FaultPlan.of(ClockDrift(at=2.0, node=2, skew=0.1)))
    harness.run(1.0)
    assert harness.node(2).clock_skew == 0.0
    harness.run(5.0)
    assert harness.node(2).clock_skew == 0.1


def test_late_apply_fires_immediately():
    harness = make_harness()
    controller = FaultController(harness.network, harness.trace)
    harness.run(10.0)
    controller.apply(FaultPlan.of(CrashStop(at=5.0, node=1)))  # already past
    harness.run(11.0)
    assert not harness.node(1).alive


def test_trace_records_carry_fault_fields():
    harness = make_harness()
    controller = FaultController(harness.network, harness.trace)
    plan = FaultPlan.of(
        CrashStop(at=1.0, node=1),
        LossBurst(at=2.0, probability=0.3, duration=1.0),
    )
    controller.apply(plan)
    harness.run(10.0)
    assert harness.trace.count("fault_plan_armed") == 1
    burst = harness.trace.first("fault_injected", fault="loss_burst")
    assert burst is not None
    assert burst["probability"] == 0.3 and burst["duration"] == 1.0
