"""Unit tests for the attack-mode taxonomy (paper Table 1)."""

import pytest

from repro.attacks.taxonomy import ATTACK_MODES, mode_by_key, taxonomy_table


def test_five_modes():
    assert len(ATTACK_MODES) == 5


def test_table1_rows_match_paper():
    rows = dict((name, (count, req)) for name, count, req in taxonomy_table())
    assert rows["Packet encapsulation"] == (2, "None")
    assert rows["Out-of-band channel"] == (2, "Out-of-band link")
    assert rows["High power transmission"] == (1, "High energy source")
    assert rows["Packet relay"] == (1, "None")
    assert rows["Protocol deviations"] == (1, "None")


def test_liteworp_detects_all_but_protocol_deviation():
    for mode in ATTACK_MODES:
        if mode.key == "deviation":
            assert not mode.liteworp_detects
        else:
            assert mode.liteworp_detects


def test_mode_by_key():
    assert mode_by_key("outofband").name == "Out-of-band channel"
    with pytest.raises(KeyError):
        mode_by_key("nonexistent")


def test_two_node_modes_are_the_tunnel_modes():
    two = {m.key for m in ATTACK_MODES if m.min_compromised_nodes == 2}
    assert two == {"encapsulation", "outofband"}
