"""Online invariant checking over the protocol trace."""

from repro.obs.invariants import InvariantChecker, Violation, check_export
from repro.sim.trace import TraceLog


def make_checker(trace, theta=2):
    checker = InvariantChecker(theta=theta)
    checker.attach(trace)
    return checker


def emit_quorum(trace, node=9, accused=4, guards=(0, 1), start=1.0):
    """A clean alert flow: each guard sends, the node accepts, then isolates."""
    t = start
    for count, guard in enumerate(guards, start=1):
        trace.emit(t, "alert_sent", guard=guard, accused=accused, recipient=node)
        trace.emit(
            t + 0.1, "alert_accepted", node=node, guard=guard,
            accused=accused, count=count,
        )
        t += 1.0
    trace.emit(t, "isolation", node=node, accused=accused, alerts=len(guards))


def test_clean_quorum_flow_has_no_violations():
    trace = TraceLog()
    checker = make_checker(trace, theta=2)
    emit_quorum(trace, guards=(0, 1))
    assert checker.violations == []
    assert checker.records_checked == 5


def test_isolation_before_quorum_is_flagged():
    trace = TraceLog()
    checker = make_checker(trace, theta=3)
    emit_quorum(trace, guards=(0, 1))  # only 2 of the required 3
    (violation,) = checker.violations
    assert violation.rule == "isolation_without_quorum"
    assert violation.category == "protocol"
    assert "2 distinct guard" in violation.message


def test_quorum_counts_distinct_guards_not_alerts():
    """The same guard accepted twice must not satisfy θ=2."""
    trace = TraceLog()
    checker = make_checker(trace, theta=2)
    trace.emit(1.0, "alert_sent", guard=0, accused=4, recipient=9)
    trace.emit(1.1, "alert_accepted", node=9, guard=0, accused=4, count=1)
    trace.emit(1.2, "alert_accepted", node=9, guard=0, accused=4, count=2)
    trace.emit(2.0, "isolation", node=9, accused=4, alerts=2)
    (violation,) = checker.violations
    assert violation.rule == "isolation_without_quorum"


def test_malc_increment_after_own_revocation_is_flagged():
    trace = TraceLog()
    checker = make_checker(trace)
    trace.emit(1.0, "guard_detection", guard=0, accused=4)
    trace.emit(
        2.0, "malc_increment", guard=0, accused=4, value=2,
        reason="drop", packet=("REQ", 9, 1), total=12,
    )
    (violation,) = checker.violations
    assert violation.rule == "malc_after_revocation"
    assert violation.category == "protocol"


def test_malc_by_other_guards_after_one_revocation_is_fine():
    """Revocation is per-observer: other guards may keep accusing."""
    trace = TraceLog()
    checker = make_checker(trace)
    trace.emit(1.0, "guard_detection", guard=0, accused=4)
    trace.emit(
        2.0, "malc_increment", guard=1, accused=4, value=2,
        reason="drop", packet=("REQ", 9, 1), total=2,
    )
    assert checker.violations == []


def test_ack_without_matching_send_is_flagged():
    trace = TraceLog()
    checker = make_checker(trace)
    trace.emit(1.0, "alert_ack_verified", guard=0, accused=4, recipient=2)
    (violation,) = checker.violations
    assert violation.rule == "ack_without_send"


def test_retransmit_without_send_is_flagged():
    trace = TraceLog()
    checker = make_checker(trace)
    trace.emit(1.0, "alert_retransmit", guard=0, accused=4, recipient=2, attempt=1)
    (violation,) = checker.violations
    assert violation.rule == "retransmit_without_send"


def test_matched_ack_and_retransmit_are_clean():
    trace = TraceLog()
    checker = make_checker(trace)
    trace.emit(1.0, "alert_sent", guard=0, accused=4, recipient=2)
    trace.emit(1.5, "alert_retransmit", guard=0, accused=4, recipient=2, attempt=1)
    trace.emit(2.0, "alert_ack_verified", guard=0, accused=4, recipient=2)
    assert checker.violations == []


def test_attack_evidence_is_deduplicated_per_node():
    trace = TraceLog()
    checker = make_checker(trace)
    for i in range(5):
        trace.emit(float(i), "malicious_drop", node=7, packet=("DATA", 1, i))
        trace.emit(float(i), "wormhole_activity", node=7)
    trace.emit(9.0, "malicious_drop", node=8, packet=("DATA", 1, 99))
    rules = sorted((v.rule, v.details["node"]) for v in checker.attack_violations)
    assert rules == [
        ("malicious_drop", 7),
        ("malicious_drop", 8),
        ("wormhole_activity", 7),
    ]
    assert checker.protocol_violations == []


def test_category_partition():
    trace = TraceLog()
    checker = make_checker(trace, theta=2)
    trace.emit(0.0, "wormhole_activity", node=7)
    trace.emit(1.0, "isolation", node=9, accused=7, alerts=0)
    assert {v.category for v in checker.violations} == {"attack", "protocol"}
    assert len(checker.attack_violations) == 1
    assert len(checker.protocol_violations) == 1


def test_irrelevant_kinds_are_ignored():
    trace = TraceLog()
    checker = make_checker(trace)
    trace.emit(0.0, "data_origin", packet=("DATA", 1, 1), origin=1, destination=2)
    assert checker.records_checked == 0


def test_check_export_groups_by_run_tag():
    """Causal state must not leak across runs sharing one export file."""
    trace = TraceLog()
    records = []
    trace.attach_sink(type("L", (), {"write": lambda self, r: records.append(r)})())
    # Run A sends the alert...
    trace.emit(1.0, "alert_sent", guard=0, accused=4, recipient=2)
    # ...run B verifies an ack it never sent.
    trace.emit(2.0, "alert_ack_verified", guard=0, accused=4, recipient=2)
    tagged = []
    for record, run in zip(records, ("a", "b")):
        tagged.append(
            type(record)(record.time, record.kind, {**record.fields, "__run__": run})
        )
    violations, runs = check_export(tagged, theta=2)
    assert runs == 2
    (violation,) = violations
    assert violation.rule == "ack_without_send"
    assert violation.details["__run__"] == "b"
    # Merged into one run the same stream is clean.
    merged, runs_merged = check_export(records, theta=2)
    assert runs_merged == 1
    assert merged == []


def test_violation_is_a_value_object():
    v = Violation(rule="r", category="protocol", time=1.0, message="m")
    assert v.details == {}
