"""Tests for the packet-leash baseline defense."""

import pytest

from repro.baselines.leashes import (
    GEO_LEASH_BYTES,
    Leash,
    LeashAgent,
    LeashConfig,
)
from repro.crypto.auth import Authenticator
from repro.experiments.scenario import ScenarioConfig, build_scenario
from repro.net.packet import DataPacket, Frame
from repro.net.topology import grid_topology
from tests.conftest import Harness


def build_agent(kind="geographic", positions=None, **cfg):
    harness = Harness(
        grid_topology(columns=3, rows=1, spacing=25.0, tx_range=30.0)
        if positions is None
        else __import__("repro.net.topology", fromlist=["Topology"]).Topology(
            positions=positions, tx_range=30.0
        )
    )
    config = LeashConfig(kind=kind, comm_range=30.0, **cfg)
    agent = LeashAgent(harness.sim, harness.node(0), harness.network.radio,
                       config, harness.trace)
    return harness, agent


def leashed_frame(agent, transmitter, position, sent_at, link_dst=None):
    leash = Leash(
        sender=transmitter,
        position=position,
        sent_at=sent_at,
        auth=Authenticator.tag(
            agent.leash_key, "leash", transmitter, position[0], position[1], sent_at
        ),
    )
    return Frame(
        packet=DataPacket(origin=transmitter, destination=0),
        transmitter=transmitter,
        link_dst=link_dst,
        leash=leash,
    )


def test_valid_local_frame_accepted():
    harness, agent = build_agent()
    frame = leashed_frame(agent, transmitter=1, position=(25.0, 0.0), sent_at=0.0)
    harness.node(0).deliver(frame)
    assert agent.accepted == 1


def test_distant_leash_rejected_geographic():
    harness, agent = build_agent()
    frame = leashed_frame(agent, transmitter=1, position=(500.0, 0.0), sent_at=0.0)
    harness.node(0).deliver(frame)
    assert agent.rejected_distance == 1
    assert harness.trace.count("leash_rejected", reason="distance") == 1


def test_missing_leash_rejected():
    harness, agent = build_agent()
    bare = Frame(packet=DataPacket(origin=1, destination=0), transmitter=1)
    harness.node(0).deliver(bare)
    assert agent.rejected_missing == 1


def test_missing_leash_tolerated_when_not_required():
    harness, agent = build_agent(require_leash=False)
    bare = Frame(packet=DataPacket(origin=1, destination=0), transmitter=1)
    seen = []
    harness.node(0).add_listener(seen.append)
    harness.node(0).deliver(bare)
    assert len(seen) == 1


def test_forged_leash_rejected():
    harness, agent = build_agent()
    frame = leashed_frame(agent, transmitter=1, position=(25.0, 0.0), sent_at=0.0)
    forged = Frame(
        packet=frame.packet,
        transmitter=1,
        leash=Leash(sender=1, position=(25.0, 0.0), sent_at=0.0,
                    auth=Authenticator.forge()),
    )
    harness.node(0).deliver(forged)
    assert agent.rejected_auth == 1


def test_spoofed_sender_rejected():
    """A leash authenticating node 2 on a frame claiming transmitter 1."""
    harness, agent = build_agent()
    good = leashed_frame(agent, transmitter=2, position=(25.0, 0.0), sent_at=0.0)
    spoofed = Frame(packet=good.packet, transmitter=1, leash=good.leash)
    harness.node(0).deliver(spoofed)
    assert agent.rejected_auth == 1
    assert harness.trace.count("leash_rejected", reason="spoof") == 1


def test_speed_bound_slackens_geographic_check():
    harness, agent = build_agent(speed_bound=10.0)
    harness.sim.run(until=1.0)
    # Sent 1 s ago from 35 m away: 30 + 10 * (1 + eps) >= 35 -> accepted.
    frame = leashed_frame(agent, transmitter=1, position=(35.0, 0.0), sent_at=0.0)
    harness.node(0).deliver(frame)
    assert agent.accepted == 1


def test_temporal_leash_rejects_stale_frames():
    harness, agent = build_agent(kind="temporal", processing_budget=0.002,
                                 clock_error=0.0001)
    frame = leashed_frame(agent, transmitter=1, position=(25.0, 0.0), sent_at=0.0)
    harness.sim.run(until=1.0)  # the frame is now 1 s old: replayed
    harness.node(0).deliver(frame)
    assert agent.rejected_age == 1


def test_temporal_leash_accepts_fresh_frames():
    harness, agent = build_agent(kind="temporal", processing_budget=0.005)
    frame = leashed_frame(agent, transmitter=1, position=(25.0, 0.0), sent_at=0.0)
    # Deliver right after the air time (no sim advance past duration).
    harness.node(0).deliver(frame)
    assert agent.accepted == 1


def test_stamp_attaches_truthful_leash_and_counts_overhead():
    harness, agent = build_agent()
    bare = Frame(packet=DataPacket(origin=0, destination=1), transmitter=0)
    stamped = agent.stamp(bare)
    assert stamped.leash is not None
    assert stamped.leash.sender == 0
    assert stamped.leash.position == harness.network.radio.position(0)
    assert stamped.size_bytes == bare.size_bytes + GEO_LEASH_BYTES
    assert agent.bytes_overhead == GEO_LEASH_BYTES


def test_config_validation():
    with pytest.raises(ValueError):
        LeashConfig(kind="quantum")
    with pytest.raises(ValueError):
        LeashConfig(comm_range=0)
    with pytest.raises(ValueError):
        LeashConfig(clock_error=-1)
    with pytest.raises(ValueError):
        LeashConfig(bandwidth_bps=0)


# ----------------------------------------------------------------------
# Full-scenario comparisons (the paper's related-work claims, measured)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def relay_under_geo_leash():
    config = ScenarioConfig(
        n_nodes=30, duration=150.0, seed=5, attack_mode="relay",
        n_malicious=1, attack_start=30.0, defense="geo_leash",
    )
    scenario = build_scenario(config)
    report = scenario.run()
    return scenario, report


def test_geo_leash_defeats_relay_wormhole(relay_under_geo_leash):
    """Relayed frames die either way the attacker plays it: re-stamping
    them makes the leash contradict the claimed transmitter (spoof), and
    leaving the victim's original leash makes the distance check fail."""
    scenario, report = relay_under_geo_leash
    rejections = sum(
        la.rejected_distance + la.rejected_auth
        for la in scenario.leash_agents.values()
    )
    assert rejections > 0
    assert report.wormhole_drops == 0


def test_geo_leash_cannot_stop_insider_tunnel():
    """The paper's critique: leashes do not neutralise compromised nodes.
    Two colluding insiders re-leash tunnelled traffic as their own and the
    wormhole works as if unprotected."""
    unprotected = build_scenario(
        ScenarioConfig(n_nodes=30, duration=150.0, seed=5, attack_start=30.0,
                       defense="none")
    ).run()
    leashed = build_scenario(
        ScenarioConfig(n_nodes=30, duration=150.0, seed=5, attack_start=30.0,
                       defense="geo_leash")
    ).run()
    assert leashed.wormhole_drops > unprotected.wormhole_drops * 0.5
    assert leashed.isolation_times == {}  # and nobody is ever isolated


def test_leash_adds_per_packet_overhead_liteworp_does_not():
    leashed_scenario = build_scenario(
        ScenarioConfig(n_nodes=20, duration=100.0, seed=5, attack_mode="none",
                       n_malicious=0, defense="geo_leash")
    )
    leashed_scenario.run()
    leash_bytes = sum(la.bytes_overhead for la in leashed_scenario.leash_agents.values())
    assert leash_bytes > 0
    # LITEWORP's steady-state per-packet overhead is zero by construction:
    # it adds no fields to any packet (Frame.leash is None throughout).
    lw_scenario = build_scenario(
        ScenarioConfig(n_nodes=20, duration=100.0, seed=5, attack_mode="none",
                       n_malicious=0, defense="liteworp")
    )
    observed = []
    lw_scenario.network.channel.add_tx_observer(
        lambda s, f, t: observed.append(f.leash)
    )
    lw_scenario.run()
    assert all(leash is None for leash in observed)
