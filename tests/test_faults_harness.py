"""Tests for the harness fault injector: plan construction, JSON
round-trip, cross-process claim semantics, and the worker/sink wrappers."""

import errno
import json

import pytest

from repro.experiments.cache import config_digest
from repro.experiments.scenario import ScenarioConfig
from repro.faults.harness import (
    CorruptResult,
    HarnessFaultController,
    HarnessFaultError,
    HarnessFaultPlan,
    InjectedWorkerCrash,
    SinkIOError,
    TornJournalWrite,
    WorkerCrash,
    WorkerHang,
    WorkerSlowdown,
    load_harness_plan,
)


# ----------------------------------------------------------------------
# Plan construction + validation
# ----------------------------------------------------------------------
def test_plan_sorts_and_validates():
    plan = HarnessFaultPlan.of(
        TornJournalWrite(entry=3),
        WorkerCrash(job=1),
        CorruptResult(job=0),
    )
    assert [f.kind for f in plan] == [
        "corrupt_result", "torn_journal_write", "worker_crash",
    ]
    assert len(plan) == 3


def test_fault_validation_rejects_bad_fields():
    with pytest.raises(HarnessFaultError, match="job index"):
        HarnessFaultPlan.of(WorkerCrash(job=-1))
    with pytest.raises(HarnessFaultError, match="times"):
        HarnessFaultPlan.of(WorkerCrash(job=0, times=0))
    with pytest.raises(HarnessFaultError, match="seconds"):
        HarnessFaultPlan.of(WorkerHang(job=0, seconds=0.0))
    with pytest.raises(HarnessFaultError, match="fraction"):
        HarnessFaultPlan.of(TornJournalWrite(entry=0, fraction=1.5))
    with pytest.raises(HarnessFaultError, match="write"):
        HarnessFaultPlan.of(SinkIOError(write=-1))


def test_plan_json_round_trip(tmp_path):
    plan = HarnessFaultPlan.of(
        WorkerCrash(job=2, hard=True),
        WorkerHang(job=1, seconds=5.0),
        WorkerSlowdown(job=0, seconds=0.01),
        CorruptResult(job=3),
        TornJournalWrite(entry=1, fraction=0.25),
        SinkIOError(write=4, errno_code=errno.EIO),
    )
    text = plan.to_json()
    assert HarnessFaultPlan.from_json(text) == plan
    path = tmp_path / "plan.json"
    path.write_text(text)
    assert load_harness_plan(path) == plan
    # The document shape is stable and greppable.
    payload = json.loads(text)
    assert {entry["kind"] for entry in payload["harness_faults"]} == {
        "worker_crash", "worker_hang", "worker_slowdown",
        "corrupt_result", "torn_journal_write", "sink_io_error",
    }


def test_plan_from_dict_rejects_garbage():
    with pytest.raises(HarnessFaultError, match="harness_faults"):
        HarnessFaultPlan.from_dict({})
    with pytest.raises(HarnessFaultError, match="kind"):
        HarnessFaultPlan.from_dict({"harness_faults": [{"job": 1}]})
    with pytest.raises(HarnessFaultError, match="unknown"):
        HarnessFaultPlan.from_dict({"harness_faults": [{"kind": "gremlin"}]})
    with pytest.raises(HarnessFaultError, match="bad fields"):
        HarnessFaultPlan.from_dict(
            {"harness_faults": [{"kind": "worker_crash", "bogus": 1}]}
        )


def test_sampled_plan_is_seed_deterministic():
    a = HarnessFaultPlan.sampled(
        7, 20, crashes=2, hard_crashes=1, hangs=1, torn_writes=1, sink_errors=1
    )
    b = HarnessFaultPlan.sampled(
        7, 20, crashes=2, hard_crashes=1, hangs=1, torn_writes=1, sink_errors=1
    )
    c = HarnessFaultPlan.sampled(
        8, 20, crashes=2, hard_crashes=1, hangs=1, torn_writes=1, sink_errors=1
    )
    assert a == b
    assert a != c
    # Job targets are distinct (drawn without replacement).
    jobs = [f.job for f in a if hasattr(f, "job")]
    assert len(jobs) == len(set(jobs)) == 4


def test_sampled_plan_rejects_oversubscription():
    with pytest.raises(HarnessFaultError, match="cannot target"):
        HarnessFaultPlan.sampled(1, 2, crashes=3)


# ----------------------------------------------------------------------
# Claim semantics (the cross-process "fire exactly N times" contract)
# ----------------------------------------------------------------------
def test_claim_fires_exactly_times(tmp_path):
    fault = WorkerCrash(job=0, times=2)
    controller = HarnessFaultController(HarnessFaultPlan.of(fault), tmp_path / "s")
    assert controller.claim(fault) is True
    assert controller.claim(fault) is True
    assert controller.claim(fault) is False
    assert controller.fired(fault) == 2
    # A second controller over the same state dir sees the exhaustion —
    # this is what makes resume runs not re-inject already-fired faults.
    other = HarnessFaultController(HarnessFaultPlan.of(fault), tmp_path / "s")
    assert other.claim(fault) is False


def test_claim_torn_write_matches_entry(tmp_path):
    fault = TornJournalWrite(entry=3)
    controller = HarnessFaultController(HarnessFaultPlan.of(fault), tmp_path / "s")
    assert controller.claim_torn_write(0) is None
    assert controller.claim_torn_write(3) is fault
    assert controller.claim_torn_write(3) is None  # slot spent


# ----------------------------------------------------------------------
# Worker wrapper
# ----------------------------------------------------------------------
def _worker(config):
    return f"ran:{config.seed}"


def _index_map(configs):
    return {config_digest(config): i for i, config in enumerate(configs)}


def test_faulty_worker_soft_crash_then_recovers(tmp_path):
    configs = [ScenarioConfig(seed=s) for s in (1, 2)]
    controller = HarnessFaultController(
        HarnessFaultPlan.of(WorkerCrash(job=0)), tmp_path / "s"
    )
    wrapped = controller.wrap_worker(_worker, _index_map(configs))
    with pytest.raises(InjectedWorkerCrash):
        wrapped(configs[0])
    # The fault fired once; the retry succeeds and job 1 is untouched.
    assert wrapped(configs[0]) == "ran:1"
    assert wrapped(configs[1]) == "ran:2"


def test_faulty_worker_corrupt_and_slowdown(tmp_path):
    configs = [ScenarioConfig(seed=s) for s in (1, 2)]
    controller = HarnessFaultController(
        HarnessFaultPlan.of(
            CorruptResult(job=0), WorkerSlowdown(job=1, seconds=0.001)
        ),
        tmp_path / "s",
    )
    wrapped = controller.wrap_worker(_worker, _index_map(configs))
    corrupt = wrapped(configs[0])
    assert corrupt == {"__corrupt__": "injected payload corruption"}
    assert wrapped(configs[0]) == "ran:1"  # fault spent
    assert wrapped(configs[1]) == "ran:2"  # slowdown still completes


def test_faulty_worker_pickles(tmp_path):
    import pickle

    configs = [ScenarioConfig(seed=1)]
    controller = HarnessFaultController(
        HarnessFaultPlan.of(WorkerCrash(job=0)), tmp_path / "s"
    )
    wrapped = controller.wrap_worker(_worker, _index_map(configs))
    clone = pickle.loads(pickle.dumps(wrapped))
    # The clone shares firing state through the marker directory.
    with pytest.raises(InjectedWorkerCrash):
        clone(configs[0])
    assert wrapped(configs[0]) == "ran:1"


# ----------------------------------------------------------------------
# Sink wrapper
# ----------------------------------------------------------------------
class _ListSink:
    def __init__(self):
        self.records = []
        self.closed = False

    def write(self, record):
        self.records.append(record)

    def close(self):
        self.closed = True


def test_faulty_sink_raises_on_planned_write(tmp_path):
    controller = HarnessFaultController(
        HarnessFaultPlan.of(SinkIOError(write=1)), tmp_path / "s"
    )
    sink = _ListSink()
    faulty = controller.wrap_sink(sink)
    faulty.write("a")
    with pytest.raises(OSError) as excinfo:
        faulty.write("b")
    assert excinfo.value.errno == errno.ENOSPC
    # One-shot: the write index moves on and the slot is spent.
    faulty.write("c")
    assert sink.records == ["a", "c"]
    faulty.close()
    assert sink.closed
