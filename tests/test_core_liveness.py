"""LivenessManager: the heartbeat/probe failure detector state machine."""

from repro.core.agent import LiteworpAgent
from repro.core.config import LiteworpConfig
from repro.core.liveness import ALIVE, DEAD, SUSPECT
from repro.crypto.keys import PairwiseKeyManager
from repro.net.topology import grid_topology
from tests.conftest import Harness


def liveness_config(**overrides) -> LiteworpConfig:
    base = dict(
        heartbeat_period=0.5,
        liveness_timeout_beats=3.0,
        probe_retries=2,
        probe_backoff=0.2,
    )
    base.update(overrides)
    return LiteworpConfig(**base)


def build_agents(harness: Harness, config: LiteworpConfig, configs=None):
    """One activated agent per node; ``configs`` overrides per node id."""
    keys = PairwiseKeyManager()
    adjacency = harness.topology.adjacency()
    agents = {}
    for node_id in harness.topology.node_ids:
        node_config = (configs or {}).get(node_id, config)
        agent = LiteworpAgent(
            harness.sim,
            harness.node(node_id),
            keys.enroll(node_id),
            node_config,
            harness.trace,
        )
        agent.install_oracle(adjacency)
        agents[node_id] = agent
    return agents


def test_silent_neighbor_goes_suspect_then_dead():
    harness = Harness(grid_topology(columns=3, rows=1, spacing=20.0, tx_range=30.0))
    agents = build_agents(harness, liveness_config())
    harness.sim.schedule_at(3.0, harness.node(2).fail)
    harness.run(15.0)
    assert agents[1].liveness.state_of(2) == DEAD
    suspect = harness.trace.first("neighbor_suspect", node=1, neighbor=2)
    dead = harness.trace.first("neighbor_dead", node=1, neighbor=2)
    assert suspect is not None and dead is not None
    assert 3.0 < suspect.time < dead.time
    assert agents[1].liveness.dead_neighbors() == (2,)


def test_suspect_suspends_accusations_before_death():
    """Between SUSPECT and DEAD the node is still alive for routing but
    no longer accusable — silence under adjudication is not evidence."""
    harness = Harness(grid_topology(columns=3, rows=1, spacing=20.0, tx_range=30.0))
    agents = build_agents(harness, liveness_config())
    seen = []

    def on_suspect(record):
        if record["node"] == 1 and record["neighbor"] == 2:
            liveness = agents[1].liveness
            seen.append((liveness.is_alive(2), liveness.is_accusable(2)))

    harness.trace.subscribe("neighbor_suspect", on_suspect)
    harness.sim.schedule_at(3.0, harness.node(2).fail)
    harness.run(15.0)
    assert seen and seen[0] == (True, False)
    assert not agents[1].liveness.is_alive(2)  # DEAD by the end
    assert agents[1].liveness.state_of(2) == DEAD


def test_quiet_but_responsive_neighbor_survives_probing():
    """A neighbor that stops heartbeating but still answers probes is
    cleared back to ALIVE and never declared dead."""
    harness = Harness(grid_topology(columns=2, rows=1, spacing=20.0, tx_range=30.0))
    quiet = liveness_config(heartbeat_period=120.0)  # one beat, then silence
    agents = build_agents(harness, liveness_config(), configs={1: quiet})
    harness.run(20.0)
    assert harness.trace.count("neighbor_suspect", node=0, neighbor=1) >= 1
    assert harness.trace.count("neighbor_dead") == 0
    assert agents[0].liveness.state_of(1) == ALIVE


def test_reboot_recovers_dead_neighbor():
    harness = Harness(grid_topology(columns=2, rows=1, spacing=20.0, tx_range=30.0))
    agents = build_agents(harness, liveness_config())
    harness.sim.schedule_at(3.0, harness.node(1).fail)
    harness.sim.schedule_at(12.0, harness.node(1).recover)
    harness.run(25.0)
    assert agents[0].liveness.state_of(1) == ALIVE
    dead = harness.trace.first("neighbor_dead", node=0, neighbor=1)
    recovered = harness.trace.first("neighbor_recovered", node=0, neighbor=1)
    assert dead is not None and recovered is not None
    assert dead.time < 12.0 < recovered.time
    assert agents[0].liveness.recoveries_seen == 1


def test_death_exonerates_accrued_malc():
    """MalC mass accrued by a node's silence is voided when its guard
    learns the silence was a crash (``exonerate_dead``)."""
    harness = Harness(grid_topology(columns=2, rows=1, spacing=20.0, tx_range=30.0))
    agents = build_agents(harness, liveness_config())
    table = agents[0].table
    table.record_malicious(1, 5, now=2.0, window=200.0)
    harness.sim.schedule_at(3.0, harness.node(1).fail)
    harness.run(15.0)
    assert agents[0].liveness.state_of(1) == DEAD
    assert table.malc(1, harness.sim.now, 200.0) == 0


def test_dead_neighbor_unusable_for_routing_until_recovery():
    harness = Harness(grid_topology(columns=2, rows=1, spacing=20.0, tx_range=30.0))
    agents = build_agents(harness, liveness_config())
    harness.sim.schedule_at(3.0, harness.node(1).fail)
    harness.run(15.0)
    assert not agents[0].is_usable(1)
    harness.node(1).recover()
    harness.run(20.0)
    assert agents[0].is_usable(1)


def test_crash_resets_own_liveness_state():
    """A rebooted node has no memory of who it suspected before."""
    harness = Harness(grid_topology(columns=2, rows=1, spacing=20.0, tx_range=30.0))
    agents = build_agents(harness, liveness_config())
    harness.sim.schedule_at(3.0, harness.node(1).fail)
    harness.run(15.0)
    assert agents[0].liveness.state_of(1) == DEAD
    harness.node(0).fail()
    assert not agents[0].liveness.running
    assert agents[0].liveness.state_of(1) == ALIVE  # forgotten, not known-dead
    harness.node(0).recover()
    harness.run(16.0)
    assert agents[0].liveness.running


def test_states_are_exported_constants():
    assert (ALIVE, SUSPECT, DEAD) == ("alive", "suspect", "dead")
