"""Content-addressed result cache: digests, round-trips, invalidation."""

import dataclasses
import json

import pytest

from repro.experiments.cache import (
    ResultCache,
    canonical_value,
    code_salt,
    config_digest,
)
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.metrics.collector import MetricsReport

TINY = ScenarioConfig(n_nodes=16, duration=40.0, seed=4, attack_start=20.0)


def test_digest_is_stable():
    assert config_digest(TINY) == config_digest(TINY)
    rebuilt = ScenarioConfig(n_nodes=16, duration=40.0, seed=4, attack_start=20.0)
    assert config_digest(TINY) == config_digest(rebuilt)


def test_digest_changes_with_any_field():
    assert config_digest(TINY) != config_digest(dataclasses.replace(TINY, seed=5))
    assert config_digest(TINY) != config_digest(
        dataclasses.replace(TINY, duration=41.0)
    )


def test_digest_sees_nested_dataclass_fields():
    deeper = dataclasses.replace(
        TINY, liteworp=dataclasses.replace(TINY.liteworp, theta=TINY.liteworp.theta + 1)
    )
    assert config_digest(TINY) != config_digest(deeper)


def test_canonical_value_tags_dataclass_types():
    rendered = canonical_value(TINY)
    assert rendered["__type__"] == "ScenarioConfig"
    assert rendered["__fields__"]["seed"] == 4


def test_canonical_value_rejects_unhashable_junk():
    with pytest.raises(TypeError):
        canonical_value(object())


def test_code_salt_is_memoized_and_hexadecimal():
    salt = code_salt()
    assert salt == code_salt()
    assert len(salt) == 64
    int(salt, 16)


def test_cache_round_trip_is_identical(tmp_path):
    report = run_scenario(TINY)
    cache = ResultCache(tmp_path)
    assert cache.get(TINY) is None  # miss before put
    path = cache.put(TINY, report)
    assert path.exists()
    fetched = ResultCache(tmp_path).get(TINY)
    assert fetched == report
    # Byte-identical through the serialisation the sweep runner compares.
    assert json.dumps(fetched.to_state(), sort_keys=True) == json.dumps(
        report.to_state(), sort_keys=True
    )


def test_metrics_report_state_round_trip():
    report = run_scenario(TINY)
    assert MetricsReport.from_state(
        json.loads(json.dumps(report.to_state()))
    ) == report


def test_salt_change_invalidates(tmp_path):
    report = run_scenario(TINY)
    ResultCache(tmp_path, salt="a" * 64).put(TINY, report)
    assert ResultCache(tmp_path, salt="a" * 64).get(TINY) == report
    assert ResultCache(tmp_path, salt="b" * 64).get(TINY) is None


def test_corrupt_entry_is_a_miss(tmp_path):
    report = run_scenario(TINY)
    cache = ResultCache(tmp_path)
    path = cache.put(TINY, report)
    path.write_text("{not json")
    fresh = ResultCache(tmp_path)
    assert fresh.get(TINY) is None
    assert fresh.stats() == {"hits": 0, "misses": 1}


def test_hit_and_miss_counters(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get(TINY) is None
    cache.put(TINY, run_scenario(TINY))
    assert cache.get(TINY) is not None
    assert cache.stats() == {"hits": 1, "misses": 1}


ATTACKED = ScenarioConfig(
    n_nodes=24, duration=60.0, seed=3, attack_mode="outofband",
    n_malicious=2, attack_start=20.0, defense="liteworp",
)


def test_latency_stages_round_trip_through_cache(tmp_path):
    report = run_scenario(ATTACKED)
    assert report.latency_stages  # the attack must have been observed
    cache = ResultCache(tmp_path)
    cache.put(ATTACKED, report)
    fetched = ResultCache(tmp_path).get(ATTACKED)
    assert fetched.latency_stages == report.latency_stages
    for node in report.latency_stages:
        assert fetched.detection_latency(node) == report.detection_latency(node)
        assert fetched.latency_decomposition(node) == report.latency_decomposition(node)
    assert fetched.mean_detection_latency() == report.mean_detection_latency()


def test_schema_version_2_entry_loads_without_latency_stages(tmp_path):
    """Entries written before latency_stages existed must still load."""
    report = run_scenario(TINY)
    cache = ResultCache(tmp_path)
    path = cache.path_for(TINY)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = report.to_state()
    del state["latency_stages"]  # pin the version-2 on-disk shape
    path.write_text(json.dumps(
        {"schema": 2, "config": repr(TINY), "report": state}
    ))
    loaded = ResultCache(tmp_path).get(TINY)
    assert loaded is not None
    assert loaded.latency_stages == {}
    assert loaded.mean_detection_latency() is None
    assert loaded.originated == report.originated
