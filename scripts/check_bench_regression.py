"""Engine-throughput regression gate for CI.

Runs the quick engine microbenchmark and compares its median events/s
against the committed ``benchmarks/output/BENCH_engine.json``.  Fails
(exit 1) when the fresh median drops below ``--threshold`` (default 0.8,
i.e. 80%) of the committed median — the committed file is the
performance contract this repository makes, and a silent 20% loss on the
kernel hot path is a regression even when every test still passes.

Timing on shared CI runners is noisy; the quick benchmark already takes
the median of five rounds after a warmup, and the threshold leaves 20%
of headroom.  Tune with ``--threshold`` or point ``--baseline`` at a
different contract file if a runner class is systematically slower.

Usage:
    python scripts/check_bench_regression.py
    python scripts/check_bench_regression.py --threshold 0.7
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

REPO = pathlib.Path(__file__).resolve().parents[1]
DEFAULT_BASELINE = REPO / "benchmarks" / "output" / "BENCH_engine.json"


def committed_median(baseline: pathlib.Path) -> float:
    data = json.loads(baseline.read_text())
    metrics = data.get("metrics", {})
    median = metrics.get("median_events_per_second")
    if median is None:
        # Pre-rearchitecture baseline files only carried best-of-rounds.
        median = metrics.get("best_events_per_second")
    if median is None:
        raise SystemExit(f"{baseline}: no events/s metric found")
    return float(median)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=DEFAULT_BASELINE,
        help="committed BENCH_engine.json to compare against",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.8,
        help="minimum fresh/committed median ratio (default 0.8)",
    )
    args = parser.parse_args()

    from repro.bench.micro import bench_engine

    baseline = committed_median(args.baseline)
    fresh_result = bench_engine(quick=True)
    fresh = float(fresh_result.metrics["median_events_per_second"])
    ratio = fresh / baseline if baseline else 0.0
    verdict = "ok" if ratio >= args.threshold else "REGRESSION"
    print(
        f"engine throughput: fresh median {fresh:,.0f} ev/s, committed "
        f"{baseline:,.0f} ev/s, ratio {ratio:.2f} "
        f"(threshold {args.threshold:.2f}) -> {verdict}"
    )
    if ratio < args.threshold:
        print(
            "The kernel hot path got slower than the committed contract allows.\n"
            "If this is a real regression, fix it; if the committed number was\n"
            "set on faster hardware, regenerate it there with\n"
            "`repro bench --full --only engine`."
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
