"""Paper-fidelity experiment runner.

The benchmark suite defaults to scaled-down horizons so it finishes in
minutes.  This script runs the paper's actual scale — 2000-second
simulations averaged over 30 randomised runs (Table 2) — and persists
each sweep as a JSON record under ``results/``.  Expect hours of
wall-clock; every individual run is deterministic and resumable by seed.

Usage:
    python scripts/paper_scale.py            # the full fig8/9 sweep
    python scripts/paper_scale.py --runs 5   # a cheaper preview
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.records import run_and_record
from repro.experiments.scenario import ScenarioConfig

RESULTS = pathlib.Path(__file__).resolve().parents[1] / "results"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=30)
    parser.add_argument("--duration", type=float, default=2000.0)
    parser.add_argument("--nodes", type=int, default=100)
    args = parser.parse_args()

    sweeps = []
    for m in (0, 2, 4):
        for liteworp in (False, True):
            mode = "outofband" if m >= 2 else "none"
            sweeps.append(
                (
                    f"fig89_M{m}_{'lw' if liteworp else 'base'}",
                    ScenarioConfig(
                        n_nodes=args.nodes,
                        duration=args.duration,
                        seed=8,
                        attack_mode=mode,
                        n_malicious=m if mode != "none" else 0,
                        attack_start=50.0,
                        defense="liteworp" if liteworp else "none",
                    ),
                )
            )

    for name, config in sweeps:
        started = time.time()
        record = run_and_record(
            name,
            config,
            runs=args.runs,
            path=RESULTS / f"{name}.json",
            notes=f"paper-scale sweep, {args.runs} runs x {args.duration}s",
        )
        drops = record.metric("wormhole_drops")
        latency = record.isolation_latency_summary()
        print(
            f"{name:22s} drops={drops.format(1):24s} "
            f"isolation={latency.format(1):24s} "
            f"[{time.time() - started:7.1f}s]"
        )
    print(f"\nrecords written to {RESULTS}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
